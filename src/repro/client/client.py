"""GraphClient: the synchronous wire client mirroring the GraphDB facade.

A :class:`GraphClient` speaks the frame protocol of
:mod:`repro.server.protocol` over one blocking socket and exposes the same
method surface as :class:`~repro.api.GraphDB` — ``ingest`` / ``apply`` /
``apply_async`` / ``query`` / ``stream`` / ``count`` / ``histogram`` /
``explain`` / ``run_batch`` / ``pin`` / ``stats`` / ``save`` — plus the
catalog's tenant
lifecycle (``create_graph`` / ``drop_graph`` / ``graphs``).  Existing
facade callers switch transports without code changes::

    with GraphClient(host, port, graph="social") as db:
        report = db.query("node a Person\\nnode b Person\\nedge a => b")
        for page in db.stream(query).pages():
            ...

Results come back as the same domain objects the facade returns —
:class:`~repro.matching.result.MatchReport`,
:class:`~repro.dynamic.ApplyReport`,
:class:`~repro.service.ServiceBatchReport` — and server-side errors
re-raise as the same exception classes (a shed request raises
:class:`~repro.exceptions.ServiceOverloadedError` with its ``reason``, a
missing tenant raises :class:`~repro.exceptions.UnknownGraphError`, a
stale injected index raises :class:`~repro.exceptions.StaleIndexError`).

Streaming stays pipelined end-to-end: :meth:`GraphClient.stream` returns a
lazy :class:`RemoteStream` whose pages arrive as the server's worker
produces them, under credit-based flow control — the client grants one
credit per consumed page, so an unread stream never buffers more than its
window.  Closing (or abandoning) the stream sends a cancel frame; the
server cancels the producing worker and releases its snapshot pin.

The client is intentionally single-threaded: one in-flight request at a
time, with stream frames demultiplexed off the socket whenever they
interleave with a response.
"""

from __future__ import annotations

import itertools
import random
import socket
import threading
import time
import weakref
from collections import deque
from typing import Dict, Iterable, Iterator, Mapping, Optional, Sequence, Tuple, Union

from repro.api import decode_apply_report, decode_batch_report
from repro.dynamic.delta import GraphDelta
from repro.dynamic.maintenance import ApplyReport
from repro.exceptions import ProtocolError, StoreError
from repro.explain.plan import QueryPlan
from repro.matching.result import Budget, MatchReport
from repro.matching.stream import decode_page
from repro.obs.context import TraceContext
from repro.obs.metrics import MetricsRegistry
from repro.query.pattern import PatternQuery
from repro.server.protocol import decode_error, encode_frame, read_frame_sync
from repro.service.service import ServiceBatchReport

#: A query, as a parsed pattern or DSL text (mirrors ``repro.api.QueryLike``).
QueryLike = Union[PatternQuery, str]

#: Ops safe to resend verbatim after a reconnect: pure reads with no
#: server-side connection state.  Writes are never here — a connection
#: that died mid-``apply`` may or may not have folded the delta, and
#: resending would double-apply it.  ``stream_open`` is excluded too
#: (its pages are connection-scoped), as is anything pin-scoped: pin
#: tokens die with the connection, so a retried read naming one fails
#: loudly rather than silently reading a different version.
_IDEMPOTENT_OPS = frozenset(
    {
        "ping",
        "graphs",
        "info",
        "query",
        "count",
        "explain",
        "histogram",
        "run_batch",
        "stats",
        "metrics",
        "slow_queries",
        "replica_status",
        "health",
        "events",
        "spans",
    }
)


def _encode_trace(trace) -> Optional[object]:
    """Wire form of a trace argument: a plain id string passes through
    (pre-distributed-tracing servers understand it), a
    :class:`~repro.obs.TraceContext` encodes to its structured form so
    the server can parent its spans under the caller's."""
    if trace is None:
        return None
    if isinstance(trace, TraceContext):
        return trace.to_wire()
    return str(trace)


def _encode_query(query: QueryLike):
    if isinstance(query, PatternQuery):
        return query.to_dict()
    if isinstance(query, str):
        return query
    raise ProtocolError(
        f"query must be a PatternQuery or DSL text, got {type(query).__name__}"
    )


class RemoteApplyHandle:
    """Handle for a delta queued on the server's background writer.

    The remote analogue of the future :meth:`GraphDB.apply_async` returns:
    :meth:`result` blocks until the server's writer folded the delta and
    returns its :class:`~repro.dynamic.ApplyReport`.
    """

    def __init__(self, client: "GraphClient", graph: str, token: str) -> None:
        self._client = client
        self._graph = graph
        self.token = token
        self._report: Optional[ApplyReport] = None

    def result(self, timeout: Optional[float] = None) -> ApplyReport:
        """Block until the fold published (or failed); returns its report."""
        if self._report is None:
            payload = self._client._request(
                "apply_wait", graph=self._graph, token=self.token, timeout=timeout
            )
            self._report = decode_apply_report(payload)
        return self._report


class RemoteSnapshot:
    """A server-side pin: repeated reads against one immutable version.

    The remote analogue of :class:`~repro.store.StoreSnapshot`: every read
    issued through it answers from the pinned version even while writers
    publish new heads.  Release it (or use it as a context manager) — the
    server also releases any pins a dropped connection left behind.
    """

    def __init__(self, client: "GraphClient", graph: str, token: str, version: int) -> None:
        self._client = client
        self._graph = graph
        self.token = token
        self._version = version
        self._released = False

    @property
    def version(self) -> int:
        """The pinned graph version."""
        return self._version

    def query(self, query: QueryLike, **kwargs) -> MatchReport:
        """Evaluate one query at the pinned version."""
        return self._client.query(query, graph=self._graph, pin=self.token, **kwargs)

    def count(self, query: QueryLike, **kwargs) -> int:
        """Occurrence count at the pinned version (counting drain)."""
        return self._client.count(query, graph=self._graph, pin=self.token, **kwargs)

    def explain(self, query: QueryLike, **kwargs) -> QueryPlan:
        """EXPLAIN (or EXPLAIN ANALYZE) one query at the pinned version."""
        return self._client.explain(query, graph=self._graph, pin=self.token, **kwargs)

    def histogram(self, query: QueryLike, **kwargs) -> Dict[str, int]:
        """Per-label participating-node histogram at the pinned version."""
        return self._client.histogram(query, graph=self._graph, pin=self.token, **kwargs)

    def run_batch(self, queries, **kwargs) -> ServiceBatchReport:
        """Execute a whole batch against the pinned version."""
        return self._client.run_batch(queries, graph=self._graph, pin=self.token, **kwargs)

    def stream(self, query: QueryLike, **kwargs) -> "RemoteStream":
        """Open a pipelined stream pinned to this version."""
        return self._client.stream(query, graph=self._graph, pin=self.token, **kwargs)

    def release(self) -> None:
        """Give the server-side pin back (idempotent)."""
        if self._released:
            return
        self._released = True
        try:
            self._client._request("release", pin=self.token)
        except (ConnectionError, OSError):
            pass  # connection gone: the server released the pin at teardown

    def __enter__(self) -> "RemoteSnapshot":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "released" if self._released else "pinned"
        return f"RemoteSnapshot({self._graph!r} v{self._version}, {state})"


class _RemotePages:
    """Iterator over a :class:`RemoteStream`'s pages; closing cancels remotely."""

    def __init__(self, stream: "RemoteStream", timeout: Optional[float]) -> None:
        self._stream = stream
        self._timeout = timeout

    def __iter__(self) -> "_RemotePages":
        return self

    def __next__(self) -> Tuple[Tuple[int, ...], ...]:
        try:
            page = self._stream._next_page(self._timeout)
        except BaseException:
            self._stream.close()
            raise
        if page is None:
            raise StopIteration
        return page

    def close(self) -> None:
        self._stream.close()


class RemoteStream:
    """Pipelined, credit-gated iteration over one remote query's occurrences.

    The wire analogue of :class:`~repro.service.StreamingResult`: pages
    arrive as the server's worker produces them (the first one typically
    long before the query completes), and the client's consumption rate
    bounds the producer through credits — one granted per consumed page on
    top of the initial ``window``.  The server holds the snapshot pin for
    the stream's lifetime; :meth:`close` (or abandoning the iterator, or
    dropping the connection) cancels the producing worker and releases it.

    :meth:`report` drains the remaining pages and returns the finalised
    :class:`MatchReport` — counters and terminal status only (streamed
    occurrences travel in the pages, not in the report).
    """

    def __init__(
        self,
        client: "GraphClient",
        graph: str,
        stream_id: int,
        version: int,
        page_size: int,
    ) -> None:
        self._client = client
        self._graph = graph
        self.stream_id = stream_id
        self._version = version
        self.page_size = page_size
        self._frames: deque = deque()
        self._ended = False
        self._error: Optional[Exception] = None
        self._report: Optional[MatchReport] = None
        self._closed = False

    @property
    def version(self) -> int:
        """The pinned graph version the stream's occurrences describe."""
        return self._version

    # ------------------------------------------------------------------ #
    # frame plumbing (called by the owning client)
    # ------------------------------------------------------------------ #

    def _enqueue(self, frame: Dict[str, object]) -> None:
        self._frames.append(frame)

    def _next_page(self, timeout: Optional[float]):
        """The next page, or ``None`` at end of stream (raising its error)."""
        while True:
            if self._frames:
                frame = self._frames.popleft()
            elif self._ended or self._closed:
                frame = None
            else:
                frame = self._client._read_stream_frame(self.stream_id, timeout)
            if frame is None:
                if self._error is not None:
                    error, self._error = self._error, None
                    raise error
                return None
            if frame.get("end"):
                self._ended = True
                error_payload = frame.get("error")
                if error_payload is not None:
                    self._error = decode_error(error_payload)
                else:
                    self._report = MatchReport.from_wire(frame.get("report") or {})
                self._client._forget_stream(self.stream_id)
                continue
            self._client._grant_credit(self.stream_id, 1)
            return decode_page(frame.get("page") or ())

    # ------------------------------------------------------------------ #
    # consumption
    # ------------------------------------------------------------------ #

    def pages(self, timeout: Optional[float] = None) -> _RemotePages:
        """Iterate occurrence pages as the server pumps them.

        ``timeout`` bounds the wait per page (:class:`TimeoutError`); a
        shed or failed remote query re-raises its mapped error here, and
        any exit — exhaustion, error, abandonment — cancels a still-running
        remote producer.
        """
        return _RemotePages(self, timeout)

    def __iter__(self) -> Iterator[Tuple[int, ...]]:
        for page in self.pages():
            for occurrence in page:
                yield occurrence

    def report(self, timeout: Optional[float] = None) -> MatchReport:
        """Drain to completion and return the finalised (count-only) report."""
        for _ in self.pages(timeout):
            pass
        if self._report is None:
            raise StoreError("stream ended without a final report")
        return self._report

    def close(self) -> None:
        """Cancel a live remote producer and drop local buffers (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._client._forget_stream(self.stream_id)
        if not self._ended:
            self._client._cancel_stream(self.stream_id)
        self._frames.clear()

    def __enter__(self) -> "RemoteStream":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - gc safety net
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else ("ended" if self._ended else "open")
        return f"RemoteStream(#{self.stream_id} {self._graph!r} v{self._version}, {state})"


class GraphClient:
    """Synchronous client for a :class:`~repro.server.GraphServer`.

    Parameters
    ----------
    host / port:
        The server's bind address (``GraphServer.address``).
    graph:
        Default tenant name for every operation (individual calls may
        override with ``graph=...``); create one first with
        :meth:`create_graph` if the server's catalog is empty.
    timeout:
        Default per-response wait in seconds (:class:`TimeoutError` past
        it); per-call ``timeout`` arguments override.
    stream_window:
        Credit window requested for this client's streams.
    reconnect:
        When True (default), a connection dropped under an **idempotent
        read** (``query`` / ``count`` / ``explain`` / ``histogram`` /
        ``run_batch`` / ``info`` / ``stats`` / ...) is transparently
        re-established — up to ``max_retries`` times, with bounded
        exponential backoff plus jitter — and the request resent.
        Writes (``ingest`` / ``apply`` / ...) are **never** retried: a
        socket that died mid-write leaves the fold in doubt, and the
        caller must decide.  Response *timeouts* are never retried
        either (the server is still working; resending would double the
        load).  Reconnects are counted in the ``client_reconnects_total``
        metric on :attr:`registry`.
    registry:
        The :class:`~repro.obs.MetricsRegistry` client-side metrics land
        in; by default the client creates its own (see :meth:`local_metrics`).
    """

    def __init__(
        self,
        host: str,
        port: int,
        graph: Optional[str] = None,
        timeout: Optional[float] = 60.0,
        stream_window: int = 4,
        connect_timeout: float = 10.0,
        reconnect: bool = True,
        max_retries: int = 3,
        backoff_base: float = 0.05,
        backoff_max: float = 1.0,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self._host = host
        self._port = int(port)
        self._connect_timeout = connect_timeout
        self._sock = socket.create_connection((host, port), timeout=connect_timeout)
        self._sock.settimeout(timeout)
        self._timeout = timeout
        self._lock = threading.RLock()
        self._ids = itertools.count(1)
        self._graph = graph
        self.stream_window = max(1, stream_window)
        self._reconnect_enabled = bool(reconnect)
        self._max_retries = max(0, int(max_retries))
        self._backoff_base = float(backoff_base)
        self._backoff_max = float(backoff_max)
        self.registry = registry if registry is not None else MetricsRegistry()
        self._m_reconnects = self.registry.counter(
            "client_reconnects_total",
            "Connections transparently re-established under idempotent reads",
        )
        self.reconnects = 0
        # Weak refs: a stream the caller abandons must become garbage, so
        # its __del__ can cancel the remote producer (a strong registry
        # reference would pin it — and the server-side query — forever).
        self._streams: Dict[int, "weakref.ref[RemoteStream]"] = {}
        self._closed = False

    # ------------------------------------------------------------------ #
    # wire plumbing
    # ------------------------------------------------------------------ #

    def _send(self, frame: Dict[str, object]) -> None:
        if self._closed:
            raise StoreError("client is closed")
        self._sock.sendall(encode_frame(frame))

    def _read_frame(self, timeout: Optional[float]) -> Optional[Dict[str, object]]:
        self._sock.settimeout(timeout if timeout is not None else self._timeout)
        try:
            return read_frame_sync(self._sock)
        except socket.timeout:
            raise TimeoutError(
                f"no frame from the server within {timeout or self._timeout}s"
            ) from None

    def _reopen(self) -> None:
        """Replace the dead socket with a fresh connection.

        Connection-scoped state does not survive: open streams are
        forgotten (their server side tore down with the old connection),
        and any pin / apply tokens the caller still holds will answer
        with their mapped server errors.
        """
        try:
            self._sock.close()
        except OSError:
            pass
        self._streams.clear()
        self._sock = socket.create_connection(
            (self._host, self._port), timeout=self._connect_timeout
        )
        self._sock.settimeout(self._timeout)
        self.reconnects += 1
        self._m_reconnects.inc()

    def _can_retry(self, op: str, frame: Dict[str, object]) -> bool:
        return (
            self._reconnect_enabled
            and not self._closed
            and op in _IDEMPOTENT_OPS
            and frame.get("pin") is None  # pin tokens died with the socket
        )

    def _request(
        self,
        op: str,
        timeout: Optional[float] = None,
        wait_timeout: Optional[float] = None,
        **args,
    ) -> Dict[str, object]:
        """One request/response round trip (stream frames are demultiplexed).

        ``timeout`` travels in the frame, so the *server* bounds its
        blocking wait (ticket/future result) and answers with a mapped
        :class:`TimeoutError` — otherwise a timed-out client would leave
        an executor thread blocked server-side.  The client's own socket
        wait gets a grace period on top so that error frame can arrive.

        A connection lost under an idempotent read reconnects (bounded
        exponential backoff + jitter) and resends; see the class notes.
        """
        with self._lock:
            frame = {"op": op}
            frame.update({key: value for key, value in args.items() if value is not None})
            wait = None
            if timeout is not None:
                frame.setdefault("timeout", timeout)
                wait = timeout + 10.0
            if wait_timeout is not None:
                # Probe mode: bound the *socket* wait itself.  A frozen
                # process (SIGSTOP) keeps its TCP socket open but answers
                # nothing — health probes must fail in probe time, not in
                # request-timeout-plus-grace time.
                wait = wait_timeout
            last_error: Optional[BaseException] = None
            for attempt in range(self._max_retries + 1):
                if attempt:
                    delay = min(
                        self._backoff_base * (2 ** (attempt - 1)), self._backoff_max
                    )
                    time.sleep(delay + random.uniform(0.0, delay))
                    try:
                        self._reopen()
                    except OSError as exc:
                        last_error = exc
                        continue  # server still down; next attempt backs off more
                frame["id"] = next(self._ids)
                try:
                    self._send(frame)
                    return self._wait_response(frame["id"], wait)
                except TimeoutError:
                    # The server is (presumably) still working on it;
                    # resending would double the load, not halve the wait.
                    raise
                except (ConnectionError, OSError) as exc:
                    if not self._can_retry(op, frame):
                        raise
                    last_error = exc
            raise last_error

    def _wait_response(self, ident: int, timeout: Optional[float]) -> Dict[str, object]:
        while True:
            frame = self._read_frame(timeout)
            if frame is None:
                raise ConnectionError("server closed the connection")
            if "stream" in frame:
                self._route_stream_frame(frame)
                continue
            response_id = frame.get("id")
            if response_id == ident:
                if frame.get("ok"):
                    return frame.get("result")
                raise decode_error(frame.get("error"))
            if isinstance(response_id, int) and response_id < ident:
                # Stale reply to a request whose wait timed out earlier.
                continue
            raise ProtocolError(f"out-of-order response: {frame!r}")

    def _read_stream_frame(
        self, stream_id: int, timeout: Optional[float]
    ) -> Optional[Dict[str, object]]:
        """Blocking read of the next frame belonging to ``stream_id``."""
        with self._lock:
            while True:
                frame = self._read_frame(timeout)
                if frame is None:
                    raise ConnectionError("server closed the connection mid-stream")
                if frame.get("stream") == stream_id:
                    return frame
                if "stream" in frame:
                    self._route_stream_frame(frame)
                    continue
                if isinstance(frame.get("id"), int):
                    # Stale reply to a request whose wait timed out earlier;
                    # no request is in flight while paging (single-threaded
                    # client), so it is safe to drop.
                    continue
                raise ProtocolError(
                    f"unexpected frame while paging stream {stream_id}: {frame!r}"
                )

    def _route_stream_frame(self, frame: Dict[str, object]) -> None:
        reference = self._streams.get(frame.get("stream"))
        stream = reference() if reference is not None else None
        if stream is not None:
            stream._enqueue(frame)
        # Frames for unknown/closed streams are dropped: the server may
        # have pumped a few pages before observing our cancel.

    def _grant_credit(self, stream_id: int, credits: int) -> None:
        try:
            self._send({"op": "credit", "stream": stream_id, "n": credits})
        except (ConnectionError, OSError):
            pass

    def _cancel_stream(self, stream_id: int) -> None:
        try:
            self._send({"op": "stream_cancel", "stream": stream_id})
        except (ConnectionError, OSError, StoreError):
            pass  # connection gone: server-side teardown already cleaned up

    def _forget_stream(self, stream_id: int) -> None:
        self._streams.pop(stream_id, None)

    def _graph_name(self, graph: Optional[str]) -> str:
        name = graph or self._graph
        if not name:
            raise StoreError(
                "no graph selected: pass graph=..., or create/use one first"
            )
        return name

    # ------------------------------------------------------------------ #
    # catalog (tenant lifecycle)
    # ------------------------------------------------------------------ #

    def ping(self) -> bool:
        """Round-trip liveness check."""
        return bool(self._request("ping").get("pong"))

    def create_graph(
        self,
        name: str,
        labels: Sequence[str] = (),
        edges: Iterable[Tuple[int, int]] = (),
        exist_ok: bool = False,
        switch: bool = True,
    ) -> Dict[str, object]:
        """Create a named tenant server-side; ``switch`` selects it as default."""
        info = self._request(
            "create_graph",
            name=name,
            labels=list(labels),
            edges=[list(edge) for edge in edges],
            exist_ok=exist_ok or None,
        )
        if switch:
            self._graph = name
        return info

    def drop_graph(
        self, name: str, force: bool = False, delete_storage: bool = False
    ) -> None:
        """Drop a tenant (its store and service are closed server-side).

        The server refuses while the tenant has live pinned snapshots
        (:class:`~repro.exceptions.CatalogError`) unless ``force``;
        ``delete_storage`` also removes a durable tenant's write-ahead-log
        directory so a server restart does not resurrect it.
        """
        self._request(
            "drop_graph",
            name=name,
            force=force or None,
            delete_storage=delete_storage or None,
        )
        if self._graph == name:
            self._graph = None

    def graphs(self) -> Tuple[Dict[str, object], ...]:
        """Info for every tenant in the server's catalog."""
        return tuple(self._request("graphs").get("graphs", ()))

    def use(self, graph: str) -> "GraphClient":
        """Select the default tenant for subsequent operations."""
        self._graph = graph
        return self

    def info(self, graph: Optional[str] = None) -> Dict[str, object]:
        """Head version / node / edge counts of one tenant."""
        return self._request("info", graph=self._graph_name(graph))

    @property
    def graph_name(self) -> Optional[str]:
        """The currently selected tenant name."""
        return self._graph

    @property
    def head_version(self) -> int:
        """The selected tenant's latest published version."""
        return int(self.info()["head_version"])

    @property
    def num_nodes(self) -> int:
        """Node count of the selected tenant's head version."""
        return int(self.info()["num_nodes"])

    # ------------------------------------------------------------------ #
    # writes
    # ------------------------------------------------------------------ #

    def ingest(
        self,
        labels: Sequence[str] = (),
        edges: Iterable[Tuple[int, int]] = (),
        remove_edges: Iterable[Tuple[int, int]] = (),
        graph: Optional[str] = None,
        trace: Optional[Union[str, TraceContext]] = None,
    ) -> ApplyReport:
        """Fold nodes/edges into a new version (see :meth:`GraphDB.ingest`).

        ``trace`` (a :class:`~repro.obs.TraceContext` or plain trace id)
        makes the fold a traced write: the server parents its
        ingest/fold/journal/publish spans under the caller's span, and the
        replication frames ship the context so every replica's apply lands
        in the same trace.
        """
        payload = self._request(
            "ingest",
            graph=self._graph_name(graph),
            labels=list(labels),
            edges=[list(edge) for edge in edges],
            remove_edges=[list(edge) for edge in remove_edges],
            trace=_encode_trace(trace),
        )
        return decode_apply_report(payload)

    def delta(self, graph: Optional[str] = None) -> GraphDelta:
        """A fresh delta written against the tenant's current head."""
        return GraphDelta(int(self.info(graph)["num_nodes"]))

    def apply(
        self,
        delta: GraphDelta,
        graph: Optional[str] = None,
        trace: Optional[Union[str, TraceContext]] = None,
    ) -> ApplyReport:
        """Fold a prepared delta synchronously (``trace`` as in :meth:`ingest`)."""
        payload = self._request(
            "apply",
            graph=self._graph_name(graph),
            delta=delta.to_dict(),
            trace=_encode_trace(trace),
        )
        return decode_apply_report(payload)

    def apply_async(self, delta: GraphDelta, graph: Optional[str] = None) -> RemoteApplyHandle:
        """Queue a delta on the server's background writer; returns a handle."""
        name = self._graph_name(graph)
        payload = self._request("apply_async", graph=name, delta=delta.to_dict())
        return RemoteApplyHandle(self, name, payload["token"])

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #

    def query(
        self,
        query: QueryLike,
        engine: Optional[str] = None,
        budget: Optional[Budget] = None,
        deadline_seconds: Optional[float] = None,
        timeout: Optional[float] = None,
        name: Optional[str] = None,
        graph: Optional[str] = None,
        pin: Optional[str] = None,
        trace_id: Optional[str] = None,
    ) -> MatchReport:
        """Evaluate one query to completion (see :meth:`GraphDB.query`).

        ``trace_id`` (any short string, e.g.
        :func:`repro.obs.new_trace_id`) forces end-to-end tracing
        server-side regardless of the tenant's sample rate; the resulting
        span tree — queue wait, pin, plan, enumeration, wire encoding —
        comes back in ``report.extra["trace"]``, and the same id rides on
        the error payload if the request fails instead.
        """
        payload = self._request(
            "query",
            graph=self._graph_name(graph),
            query=_encode_query(query),
            engine=engine,
            budget=budget.to_wire() if budget is not None else None,
            deadline_seconds=deadline_seconds,
            name=name,
            pin=pin,
            trace=_encode_trace(trace_id),
            timeout=timeout,
        )
        return MatchReport.from_wire(payload)

    def count(
        self,
        query: QueryLike,
        engine: Optional[str] = None,
        budget: Optional[Budget] = None,
        name: Optional[str] = None,
        graph: Optional[str] = None,
        pin: Optional[str] = None,
    ) -> int:
        """Occurrence count via the server's counting drain."""
        payload = self._request(
            "count",
            graph=self._graph_name(graph),
            query=_encode_query(query),
            engine=engine,
            budget=budget.to_wire() if budget is not None else None,
            name=name,
            pin=pin,
        )
        return int(payload["count"])

    def explain(
        self,
        query: QueryLike,
        engine: Optional[str] = None,
        analyze: bool = False,
        budget: Optional[Budget] = None,
        timeout: Optional[float] = None,
        graph: Optional[str] = None,
        pin: Optional[str] = None,
    ) -> "QueryPlan":
        """EXPLAIN (plan-only) or EXPLAIN ANALYZE one query server-side.

        The server plans — and with ``analyze=True`` executes — the query
        against the tenant's head (or the pinned version when ``pin`` is
        given) and returns the resulting
        :class:`~repro.explain.QueryPlan`, rendering identically to a
        local :meth:`GraphDB.explain` (``plan.render()`` /
        ``plan.to_dict()``).
        """
        payload = self._request(
            "explain",
            timeout=timeout,
            graph=self._graph_name(graph),
            query=_encode_query(query),
            engine=engine,
            analyze=analyze or None,
            budget=budget.to_wire() if budget is not None else None,
            pin=pin,
        )
        return QueryPlan.from_wire(payload["plan"])

    def histogram(
        self,
        query: QueryLike,
        node: Optional[int] = None,
        engine: Optional[str] = None,
        budget: Optional[Budget] = None,
        name: Optional[str] = None,
        graph: Optional[str] = None,
        pin: Optional[str] = None,
    ) -> Dict[str, int]:
        """Per-label participating-node histogram (streamed drain server-side)."""
        payload = self._request(
            "histogram",
            graph=self._graph_name(graph),
            query=_encode_query(query),
            node=node,
            engine=engine,
            budget=budget.to_wire() if budget is not None else None,
            name=name,
            pin=pin,
        )
        return dict(payload["histogram"])

    def run_batch(
        self,
        queries: Union[Mapping[str, QueryLike], Iterable[QueryLike]],
        engine: Optional[str] = None,
        budget: Optional[Budget] = None,
        workers: Optional[int] = None,
        keep_occurrences: bool = True,
        timeout: Optional[float] = None,
        graph: Optional[str] = None,
        pin: Optional[str] = None,
    ) -> ServiceBatchReport:
        """Execute a whole batch against one pinned version remotely."""
        if isinstance(queries, Mapping):
            items = [
                {"name": name, "query": _encode_query(query)}
                for name, query in queries.items()
            ]
        else:
            items = [
                {
                    "name": getattr(query, "name", None),
                    "query": _encode_query(query),
                }
                for query in queries
            ]
        payload = self._request(
            "run_batch",
            timeout=timeout,
            graph=self._graph_name(graph),
            queries=items,
            engine=engine,
            budget=budget.to_wire() if budget is not None else None,
            workers=workers,
            keep_occurrences=keep_occurrences,
            pin=pin,
        )
        return decode_batch_report(payload)

    def stream(
        self,
        query: QueryLike,
        engine: Optional[str] = None,
        budget: Optional[Budget] = None,
        page_size: int = 256,
        deadline_seconds: Optional[float] = None,
        name: Optional[str] = None,
        graph: Optional[str] = None,
        pin: Optional[str] = None,
        trace_id: Optional[str] = None,
    ) -> RemoteStream:
        """Open a pipelined stream: pages flow before the query finishes.

        With ``trace_id`` the stream's terminal report carries the span
        tree in ``extra["trace"]``, including the server's accumulated
        ``wire_encode`` time across all page frames.
        """
        graph_name = self._graph_name(graph)
        payload = self._request(
            "stream_open",
            graph=graph_name,
            query=_encode_query(query),
            engine=engine,
            budget=budget.to_wire() if budget is not None else None,
            page_size=page_size,
            deadline_seconds=deadline_seconds,
            window=self.stream_window,
            name=name,
            pin=pin,
            trace=_encode_trace(trace_id),
        )
        stream = RemoteStream(
            self,
            graph_name,
            int(payload["stream"]),
            int(payload.get("version", -1)),
            int(payload.get("page_size", page_size)),
        )
        self._streams[stream.stream_id] = weakref.ref(stream)
        return stream

    def pin(self, version: Optional[int] = None, graph: Optional[str] = None) -> RemoteSnapshot:
        """Pin a version server-side for repeated consistent reads."""
        name = self._graph_name(graph)
        payload = self._request("pin", graph=name, version=version)
        return RemoteSnapshot(self, name, payload["pin"], int(payload["version"]))

    def stats(self, graph: Optional[str] = None) -> Dict[str, object]:
        """Service counters merged with store gauges for one tenant.

        Durable tenants carry a ``durability`` section (journal appends,
        checkpoints, log backlog, last recovery) — see
        :meth:`GraphDB.stats`.
        """
        return self._request("stats", graph=self._graph_name(graph))

    def server_metrics(
        self, graph: Optional[str] = None, format: str = "json"
    ):
        """The tenant's metric families, snapshotted server-side.

        ``format="json"`` returns the structured
        :meth:`~repro.obs.MetricsRegistry.snapshot` document — every
        ``session_cache_*`` / ``store_*`` / ``service_*`` / ``server_*`` /
        ``wal_*`` / ``engine_*`` family with labelled values;
        ``format="prometheus"`` returns the text exposition format.  A
        tenant opened with telemetry disabled raises
        :class:`~repro.exceptions.StoreError`.
        """
        payload = self._request(
            "metrics", graph=self._graph_name(graph), format=format
        )
        if payload.get("format") == "prometheus":
            return str(payload.get("text", ""))
        return dict(payload.get("metrics", {}))

    def replica_status(self, graph: Optional[str] = None) -> Dict[str, object]:
        """Replication state of one tenant on the connected node.

        On a replica: ``replica=True`` plus connection/mode/lag detail
        (``lag_versions`` / ``lag_seconds`` / ``frames_applied`` / ...).
        On a primary: ``replica=False`` with the tenant's head version —
        which is how a routing layer measures staleness bounds.
        """
        return self._request("replica_status", graph=self._graph_name(graph))

    def health(self, timeout: Optional[float] = None) -> Dict[str, object]:
        """The node's health summary (graph-less, cheap, probe-friendly).

        Returns ``{"status", "node", "role", "uptime_seconds", "tenants"}``
        where each tenant entry carries its head version, WAL state,
        replication lag and a ``ready`` / ``degraded`` / ``unhealthy``
        classification (see :mod:`repro.obs.health`).  ``timeout`` bounds
        the *socket* wait: a node that cannot answer within it raises
        :class:`TimeoutError`, which routers treat as ``unreachable``.
        """
        return self._request("health", wait_timeout=timeout)

    def events(
        self,
        limit: Optional[int] = None,
        kinds: Optional[Sequence[str]] = None,
        after_seq: Optional[int] = None,
    ) -> Dict[str, object]:
        """Recent server lifecycle events, oldest first.

        Returns ``{"events": [...], "last_seq": n}``; pass ``after_seq``
        (the previous reply's ``last_seq``) to page incrementally — the
        ring's monotonic sequence numbers survive overflow, so a consumer
        polling with ``after_seq`` never re-reads an event.
        """
        return self._request(
            "events",
            limit=limit,
            kinds=list(kinds) if kinds is not None else None,
            after_seq=after_seq,
        )

    def trace_spans(
        self,
        trace_id: Optional[str] = None,
        graph: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> Tuple[Dict[str, object], ...]:
        """Finished distributed-trace spans from one tenant's span ring.

        With ``trace_id``: every span this node recorded for that trace
        (the raw material :func:`repro.obs.assemble_trace` stitches into
        a cross-node tree).  Without: the most recent spans, oldest first.
        """
        payload = self._request(
            "spans",
            graph=self._graph_name(graph),
            trace_id=trace_id,
            limit=limit,
        )
        return tuple(payload.get("spans", ()))

    def local_metrics(self) -> Dict[str, object]:
        """This client's own metric families (``client_reconnects_total``)."""
        return self.registry.snapshot()

    def slow_queries(
        self, graph: Optional[str] = None, limit: Optional[int] = None
    ) -> Tuple[Dict[str, object], ...]:
        """Recent entries of the tenant's slow-query log, oldest first.

        Each entry is the structured record the service logged — wall
        seconds, query name, engine, status, match count, version, and the
        full span tree when the query was traced.  Empty when the tenant
        has no slow-query threshold configured.
        """
        payload = self._request(
            "slow_queries", graph=self._graph_name(graph), limit=limit
        )
        return tuple(payload.get("slow_queries", ()))

    def checkpoint(self, graph: Optional[str] = None) -> Dict[str, object]:
        """Checkpoint a durable tenant server-side: snapshot head, truncate log.

        Returns the checkpoint summary (path, version, log entries
        dropped); a tenant without durable storage raises
        :class:`~repro.exceptions.StoreError`.
        """
        return self._request("checkpoint", graph=self._graph_name(graph))

    def save(self, path: str, graph: Optional[str] = None) -> str:
        """Persist the tenant's head version server-side; returns the path."""
        return str(
            self._request("save", graph=self._graph_name(graph), path=path)["path"]
        )

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Close the connection; the server releases everything we held."""
        if self._closed:
            return
        self._closed = True
        self._streams.clear()
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - defensive
            pass

    def __enter__(self) -> "GraphClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else "connected"
        return f"GraphClient(graph={self._graph!r}, {state})"
