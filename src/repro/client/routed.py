"""RoutedClient: read/write splitting across a primary and its replicas.

One writer, N read replicas is only useful if callers do not have to
hand-route every call, so :class:`RoutedClient` holds one
:class:`~repro.client.GraphClient` per node and splits the facade
surface:

* **writes** (``ingest`` / ``apply`` / ``apply_async`` / ``checkpoint``
  / ``create_graph`` / ``drop_graph`` / ``save``) go to the primary,
  always.  A primary that cannot be reached fails *fast* with
  :class:`~repro.exceptions.PrimaryUnavailableError` — writes have
  exactly one home, and silently retrying a fold the server may already
  have applied would double it.
* **reads** (``query`` / ``count`` / ``explain`` / ``histogram`` /
  ``run_batch`` / ``stream``) fan out across the replicas round-robin,
  subject to a staleness floor built from the version chain:
  ``read_your_writes=True`` (default) pins this client to versions at or
  above its own last acknowledged write, and ``max_staleness=k`` bounds
  reads to within ``k`` versions of the last *known* primary head.  A
  replica that cannot prove it meets the floor (cheap ``info`` probe,
  cached for ``probe_ttl`` seconds) is skipped for that read; a replica
  whose connection fails is **evicted** and transparently re-probed
  after ``probe_interval`` seconds.  When no replica qualifies the read
  falls back to the primary; when the primary is down too, the read
  keeps retrying the surviving replicas until ``read_timeout`` — which
  is exactly the "primary died, reads keep flowing under the bound"
  failover mode.

Routing decisions surface as ``routed_reads_total{target=...}`` /
``routed_writes_total`` / ``routed_evictions_total`` metric families on
:attr:`registry`.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.client.client import GraphClient
from repro.exceptions import PrimaryUnavailableError, ReplicationError
from repro.obs import health as health_states
from repro.obs.context import Span, SpanRecorder, TraceContext
from repro.obs.metrics import MetricsRegistry

#: ``(host, port)`` of one serving node.
Endpoint = Tuple[str, int]


class _Node:
    """One endpoint's connection state inside the router."""

    def __init__(self, endpoint: Endpoint, label: str) -> None:
        self.endpoint = (str(endpoint[0]), int(endpoint[1]))
        self.label = label
        self.client: Optional[GraphClient] = None
        self.evicted_at: Optional[float] = None
        #: graph -> (head_version, probed_at)
        self.versions: Dict[str, Tuple[int, float]] = {}
        #: last health verdict (``ready``/``degraded``/``unhealthy``/
        #: ``unreachable``) and when it was probed
        self.state: Optional[str] = None
        self.health_at: Optional[float] = None
        #: graph -> replication lag in versions, as last reported by ``health``
        self.lag: Dict[str, int] = {}

    @property
    def servable(self) -> bool:
        return self.state is not None and health_states.is_servable(self.state)


class RoutedClient:
    """Read/write-splitting client over one primary and N replicas.

    Parameters
    ----------
    primary:
        ``(host, port)`` of the writable :class:`~repro.server.GraphServer`.
    replicas:
        ``(host, port)`` of each :class:`~repro.replication.ReplicaServer`.
        An empty sequence routes every read to the primary.
    graph:
        Default tenant for every call (override per call with ``graph=``).
    read_your_writes:
        Pin this client's reads to versions >= its last acknowledged
        write (per tenant).
    max_staleness:
        Optional bound, in *versions*, on how far behind the last known
        primary head a serving replica may be.  ``None`` means any
        replicated version is acceptable (modulo ``read_your_writes``).
    """

    def __init__(
        self,
        primary: Endpoint,
        replicas: Sequence[Endpoint] = (),
        graph: Optional[str] = None,
        read_your_writes: bool = True,
        max_staleness: Optional[int] = None,
        probe_ttl: float = 0.25,
        probe_interval: float = 1.0,
        probe_timeout: float = 1.0,
        read_timeout: float = 10.0,
        timeout: Optional[float] = 60.0,
        registry: Optional[MetricsRegistry] = None,
        span_capacity: int = 256,
    ) -> None:
        self._graph = graph
        self._read_your_writes = bool(read_your_writes)
        self._max_staleness = max_staleness
        self._probe_ttl = float(probe_ttl)
        self._probe_interval = float(probe_interval)
        self._probe_timeout = float(probe_timeout)
        self._read_timeout = float(read_timeout)
        self._timeout = timeout
        self._lock = threading.RLock()
        self._primary = _Node(primary, "primary")
        self._replicas = [
            _Node(endpoint, f"replica-{index}")
            for index, endpoint in enumerate(replicas)
        ]
        self._rr = itertools.count()
        #: graph -> last version this client's writes were acknowledged at
        self._last_written: Dict[str, int] = {}
        #: graph -> last primary head this client observed
        self._known_head: Dict[str, int] = {}
        self._closed = False
        self.registry = registry if registry is not None else MetricsRegistry()
        self._m_reads = self.registry.counter(
            "routed_reads_total",
            "Reads dispatched, by serving node",
            labelnames=("target",),
        )
        self._m_writes = self.registry.counter(
            "routed_writes_total", "Writes dispatched to the primary"
        )
        self._m_evictions = self.registry.counter(
            "routed_evictions_total", "Replica connections evicted after failures"
        )
        self._m_lag = self.registry.gauge(
            "routed_replica_lag_versions",
            "Replication lag each replica last reported to this router's probes",
            labelnames=("replica",),
        )
        #: Router-side spans of traced writes (the trace's client root).
        self.spans = SpanRecorder(span_capacity)
        #: Trace id of the most recent traced write (handy when the
        #: caller passed ``trace=True`` and let the router mint the id).
        self.last_trace_id: Optional[str] = None

    # ------------------------------------------------------------------ #
    # node plumbing
    # ------------------------------------------------------------------ #

    def _connect(self, node: _Node) -> Optional[GraphClient]:
        """The node's live client, (re)connecting if due; None while evicted."""
        if node.client is not None:
            return node.client
        if (
            node.evicted_at is not None
            and time.monotonic() - node.evicted_at < self._probe_interval
        ):
            return None
        try:
            # Routing owns the failure semantics, so the inner clients
            # do not transparently retry on their own.
            node.client = GraphClient(
                node.endpoint[0],
                node.endpoint[1],
                timeout=self._timeout,
                reconnect=False,
            )
            node.evicted_at = None
            return node.client
        except OSError:
            node.evicted_at = time.monotonic()
            return None

    def _evict(self, node: _Node) -> None:
        if node.client is not None:
            try:
                node.client.close()
            except Exception:
                pass
            node.client = None
        node.evicted_at = time.monotonic()
        node.versions.clear()
        node.state = health_states.UNREACHABLE
        node.health_at = None  # re-probe health first thing after reconnect
        self._m_evictions.inc()

    def _graph_name(self, graph: Optional[str]) -> str:
        name = graph or self._graph
        if not name:
            raise ReplicationError(
                "no graph selected: pass graph=..., or set one at construction"
            )
        return name

    # ------------------------------------------------------------------ #
    # staleness accounting
    # ------------------------------------------------------------------ #

    def _version_floor(self, graph: str) -> int:
        """The minimum version a node must serve for this read, or -1."""
        floor = -1
        if self._read_your_writes:
            floor = max(floor, self._last_written.get(graph, -1))
        if self._max_staleness is not None:
            head = self._known_head.get(graph, -1)
            if head >= 0:
                floor = max(floor, head - int(self._max_staleness))
        return floor

    def _probe_health(self, node: _Node, client: GraphClient):
        """One ``health`` round trip: refresh state, heads and lag caches.

        Returns the health document, or ``None`` after evicting the node —
        a probe that cannot answer within ``probe_timeout`` means the
        process is down *or frozen* (a SIGSTOP'd server keeps its socket
        open but answers nothing), and both verdicts are ``unreachable``.
        """
        try:
            document = client.health(timeout=self._probe_timeout)
        except (TimeoutError, ConnectionError, OSError):
            self._evict(node)
            return None
        node.state = str(document.get("status") or health_states.UNHEALTHY)
        now = time.monotonic()
        node.health_at = now
        for name, entry in (document.get("tenants") or {}).items():
            if not isinstance(entry, dict):
                continue
            head = entry.get("head_version")
            if head is not None:
                node.versions[name] = (int(head), now)
            replication = entry.get("replication")
            if isinstance(replication, dict):
                lag = int(replication.get("lag_versions") or 0)
                node.lag[name] = lag
                self._m_lag.labels(node.label).set(float(lag))
        return document

    def _meets_floor(self, node: _Node, client: GraphClient, graph: str, floor: int) -> bool:
        """Health-gated qualification: the node answers probes, classifies
        as servable, and (when a floor applies) has folded up to it."""
        now = time.monotonic()
        if node.health_at is None or now - node.health_at >= self._probe_ttl:
            if self._probe_health(node, client) is None:
                return False  # unreachable — just evicted
        if not node.servable:
            return False
        if floor < 0:
            return True
        cached = node.versions.get(graph)
        # Versions are monotone: a cached "fresh enough" stays true; a
        # cached too-stale answer holds until the next health refresh.
        return cached is not None and cached[0] >= floor

    def _note_write(self, graph: str, new_version) -> None:
        if new_version is None:
            return
        version = int(new_version)
        self._last_written[graph] = max(self._last_written.get(graph, -1), version)
        self._known_head[graph] = max(self._known_head.get(graph, -1), version)

    # ------------------------------------------------------------------ #
    # routing cores
    # ------------------------------------------------------------------ #

    def _write(self, method: str, *args, graph: Optional[str] = None, **kwargs):
        """Dispatch one write to the primary; never retried, never rerouted."""
        with self._lock:
            client = self._connect(self._primary)
            if client is None:
                raise PrimaryUnavailableError(
                    f"primary {self._primary.endpoint} is unreachable — "
                    "writes have no failover"
                )
            try:
                if graph is not None:
                    kwargs["graph"] = graph
                result = getattr(client, method)(*args, **kwargs)
            except TimeoutError:
                raise
            except (ConnectionError, OSError) as exc:
                self._evict(self._primary)
                raise PrimaryUnavailableError(
                    f"primary {self._primary.endpoint} dropped during {method}: {exc}"
                ) from exc
            self._m_writes.inc()
            return result

    def _read(self, method: str, *args, graph: Optional[str] = None, **kwargs):
        """Dispatch one read: qualified replicas first, then the primary."""
        name = self._graph_name(graph)
        kwargs["graph"] = name
        with self._lock:
            floor = self._version_floor(name)
            deadline = time.monotonic() + self._read_timeout
            while True:
                outcome = self._try_read_once(method, name, floor, args, kwargs)
                if outcome is not None:
                    return outcome[0]
                if time.monotonic() >= deadline:
                    raise ReplicationError(
                        f"no node can serve {method} on {name!r} at version "
                        f">= {floor} (primary unreachable, "
                        f"{len(self._replicas)} replica(s) configured)"
                    )
                time.sleep(0.05)  # wait for a replica to fold up to the floor

    def _try_read_once(self, method, name, floor, args, kwargs):
        """One pass over the topology; ``(result,)`` or None to retry."""
        offset = next(self._rr)
        count = len(self._replicas)
        for step in range(count):
            node = self._replicas[(offset + step) % count]
            client = self._connect(node)
            if client is None:
                continue
            try:
                if not self._meets_floor(node, client, name, floor):
                    continue
                result = getattr(client, method)(*args, **kwargs)
            except TimeoutError:
                raise
            except (ConnectionError, OSError):
                self._evict(node)
                continue
            self._m_reads.labels(node.label).inc()
            return (result,)
        # No replica qualified (all evicted, stale, or none configured).
        client = self._connect(self._primary)
        if client is not None:
            try:
                result = getattr(client, method)(*args, **kwargs)
                self._m_reads.labels(self._primary.label).inc()
                return (result,)
            except TimeoutError:
                raise
            except (ConnectionError, OSError):
                self._evict(self._primary)
        return None

    # ------------------------------------------------------------------ #
    # writes -> primary
    # ------------------------------------------------------------------ #

    def _start_trace(self, trace, op: str, graph: str):
        """Open the client-side root of a traced write.

        Returns ``(child_context, root, request)``: the context the wire
        call propagates (parented under the router's ``request`` span) and
        the two router spans to finish when the call returns.  ``trace``
        may be ``True`` (mint a fresh trace id), a plain id string, or a
        prepared :class:`~repro.obs.TraceContext`.
        """
        if trace is None or trace is False:
            return None, None, None
        if isinstance(trace, TraceContext):
            context = trace
        elif trace is True:
            context = TraceContext.new()
        else:
            context = TraceContext(str(trace), None, True)
        root = Span(
            op,
            context.trace_id,
            parent_id=context.span_id,
            node="router",
            graph=graph,
        )
        request = Span(
            "request", context.trace_id, parent_id=root.span_id, node="router"
        )
        self.last_trace_id = context.trace_id
        return TraceContext(context.trace_id, request.span_id, True), root, request

    def _finish_trace(self, root: Optional[Span], request: Optional[Span]) -> None:
        if root is None:
            return
        self.spans.record(request.finish())
        self.spans.record(root.finish())

    def ingest(self, labels=(), edges=(), remove_edges=(), graph=None, trace=None):
        """Fold nodes/edges on the primary; advances the read floor.

        ``trace`` (``True``, a trace id, or a
        :class:`~repro.obs.TraceContext`) makes this a traced write: the
        router records the trace's root span, the primary hangs its
        ingest/fold/journal/publish spans under it, and every replica's
        apply joins the same trace — fetch the scattered spans with
        :meth:`trace_spans` and stitch them with
        :func:`repro.obs.assemble_trace`.
        """
        name = self._graph_name(graph)
        context, root, request = self._start_trace(trace, "write", name)
        try:
            report = self._write(
                "ingest",
                labels=labels,
                edges=edges,
                remove_edges=remove_edges,
                graph=name,
                trace=context,
            )
        finally:
            self._finish_trace(root, request)
        self._note_write(name, report.new_version)
        return report

    def apply(self, delta, graph=None, trace=None):
        """Fold a prepared delta on the primary (``trace`` as in :meth:`ingest`)."""
        name = self._graph_name(graph)
        context, root, request = self._start_trace(trace, "write", name)
        try:
            report = self._write("apply", delta, graph=name, trace=context)
        finally:
            self._finish_trace(root, request)
        self._note_write(name, report.new_version)
        return report

    def apply_async(self, delta, graph=None):
        """Queue a delta on the primary's background writer.

        The returned handle's ``result()`` reports the folded version;
        call :meth:`note_version` with it to advance this client's
        read-your-writes floor (an unresolved async fold has no version
        to pin to yet).
        """
        return self._write("apply_async", delta, graph=self._graph_name(graph))

    def checkpoint(self, graph=None):
        """Checkpoint the durable tenant on the primary."""
        return self._write("checkpoint", graph=self._graph_name(graph))

    def create_graph(self, name, labels=(), edges=(), exist_ok=False):
        """Create a tenant on the primary (replicas pick it up when tailed)."""
        info = self._write(
            "create_graph", name, labels=labels, edges=edges, exist_ok=exist_ok
        )
        if self._graph is None:
            self._graph = name
        self._note_write(name, info.get("head_version"))
        return info

    def drop_graph(self, name, force=False, delete_storage=False):
        """Drop a tenant on the primary."""
        result = self._write(
            "drop_graph", name, force=force, delete_storage=delete_storage
        )
        if self._graph == name:
            self._graph = None
        return result

    def save(self, path, graph=None):
        """Persist the tenant's head on the primary; returns the path."""
        return self._write("save", path, graph=self._graph_name(graph))

    def note_version(self, version, graph=None) -> None:
        """Manually advance the read-your-writes floor (async fold results)."""
        self._note_write(self._graph_name(graph), version)

    # ------------------------------------------------------------------ #
    # reads -> replicas (primary fallback)
    # ------------------------------------------------------------------ #

    def query(self, query, graph=None, **kwargs):
        """Evaluate one query on a qualified replica."""
        return self._read("query", query, graph=graph, **kwargs)

    def count(self, query, graph=None, **kwargs):
        """Occurrence count on a qualified replica."""
        return self._read("count", query, graph=graph, **kwargs)

    def explain(self, query, graph=None, **kwargs):
        """EXPLAIN (or EXPLAIN ANALYZE) on a qualified replica."""
        return self._read("explain", query, graph=graph, **kwargs)

    def histogram(self, query, graph=None, **kwargs):
        """Per-label histogram on a qualified replica."""
        return self._read("histogram", query, graph=graph, **kwargs)

    def run_batch(self, queries, graph=None, **kwargs):
        """Execute a batch against one qualified replica's pinned version."""
        return self._read("run_batch", queries, graph=graph, **kwargs)

    def stream(self, query, graph=None, **kwargs):
        """Open a pipelined stream on a qualified replica.

        The stream stays bound to the node that opened it; a connection
        lost mid-stream raises there (pages are connection-scoped) and
        the *next* routed call moves on to a surviving node.
        """
        return self._read("stream", query, graph=graph, **kwargs)

    def info(self, graph=None):
        """Head version / node / edge counts from a qualified node."""
        return self._read("info", graph=graph)

    # ------------------------------------------------------------------ #
    # topology introspection
    # ------------------------------------------------------------------ #

    def replica_status(self, graph=None) -> List[Dict[str, object]]:
        """Replication status of every configured replica (reachable ones)."""
        name = self._graph_name(graph)
        statuses: List[Dict[str, object]] = []
        with self._lock:
            for node in self._replicas:
                client = self._connect(node)
                if client is None:
                    statuses.append(
                        {"target": node.label, "reachable": False}
                    )
                    continue
                try:
                    status = client.replica_status(graph=name)
                except (ConnectionError, OSError):
                    self._evict(node)
                    statuses.append({"target": node.label, "reachable": False})
                    continue
                status = dict(status)
                status.update({"target": node.label, "reachable": True})
                statuses.append(status)
        return statuses

    def health(self) -> List[Dict[str, object]]:
        """Probe every configured node's ``health`` op right now.

        Each entry carries the node's ``target`` / ``endpoint`` and its
        verdict: the server-reported document for nodes that answered,
        ``status="unreachable"`` for nodes that did not (down, or frozen
        past ``probe_timeout``).
        """
        out: List[Dict[str, object]] = []
        with self._lock:
            for node in [self._primary, *self._replicas]:
                entry: Dict[str, object] = {
                    "target": node.label,
                    "endpoint": list(node.endpoint),
                }
                client = self._connect(node)
                document = (
                    self._probe_health(node, client) if client is not None else None
                )
                if document is not None:
                    entry.update(document)
                else:
                    entry["status"] = health_states.UNREACHABLE
                out.append(entry)
        return out

    def trace_spans(
        self, trace_id: Optional[str] = None, graph: Optional[str] = None
    ) -> List[Dict[str, object]]:
        """Every span of one trace visible from this router.

        Merges the router's own root spans with the ``spans`` rings of the
        primary and every reachable replica; feed the result to
        :func:`repro.obs.assemble_trace` for the cross-node tree.
        ``trace_id`` defaults to the router's most recent traced write.
        """
        name = self._graph_name(graph)
        trace_id = trace_id or self.last_trace_id
        collected: List[Dict[str, object]] = [
            span
            for span in self.spans.recent()
            if trace_id is None or span.get("trace_id") == trace_id
        ]
        with self._lock:
            for node in [self._primary, *self._replicas]:
                client = self._connect(node)
                if client is None:
                    continue
                try:
                    collected.extend(
                        client.trace_spans(trace_id=trace_id, graph=name)
                    )
                except Exception:
                    continue  # a node missing from the sweep shows up as orphans
        return collected

    def stats(self) -> Dict[str, object]:
        """Routing state at a glance: per-node health, observed lag, counts."""
        with self._lock:
            replicas = []
            for node in self._replicas:
                replicas.append(
                    {
                        "target": node.label,
                        "endpoint": list(node.endpoint),
                        "status": node.state,
                        "connected": node.client is not None,
                        "lag_versions": dict(node.lag),
                    }
                )
            reads = {
                key[0]: child.value
                for key, child in self._m_reads.children()
                if key
            }
            return {
                "primary": {
                    "endpoint": list(self._primary.endpoint),
                    "status": self._primary.state,
                    "connected": self._primary.client is not None,
                },
                "replicas": replicas,
                "reads_by_target": reads,
                "writes": self._m_writes.value,
                "evictions": self._m_evictions.value,
                "known_heads": dict(self._known_head),
                "last_written": dict(self._last_written),
            }

    def local_metrics(self) -> Dict[str, object]:
        """This router's metric families (reads by target, writes, evictions,
        per-replica observed lag)."""
        return self.registry.snapshot()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Close every node connection (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for node in [self._primary, *self._replicas]:
            if node.client is not None:
                try:
                    node.client.close()
                except Exception:
                    pass
                node.client = None

    def __enter__(self) -> "RoutedClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RoutedClient(primary={self._primary.endpoint}, "
            f"replicas={[node.endpoint for node in self._replicas]}, "
            f"graph={self._graph!r})"
        )
