"""RoutedClient: read/write splitting across a primary and its replicas.

One writer, N read replicas is only useful if callers do not have to
hand-route every call, so :class:`RoutedClient` holds one
:class:`~repro.client.GraphClient` per node and splits the facade
surface:

* **writes** (``ingest`` / ``apply`` / ``apply_async`` / ``checkpoint``
  / ``create_graph`` / ``drop_graph`` / ``save``) go to the primary,
  always.  A primary that cannot be reached fails *fast* with
  :class:`~repro.exceptions.PrimaryUnavailableError` — writes have
  exactly one home, and silently retrying a fold the server may already
  have applied would double it.
* **reads** (``query`` / ``count`` / ``explain`` / ``histogram`` /
  ``run_batch`` / ``stream``) fan out across the replicas round-robin,
  subject to a staleness floor built from the version chain:
  ``read_your_writes=True`` (default) pins this client to versions at or
  above its own last acknowledged write, and ``max_staleness=k`` bounds
  reads to within ``k`` versions of the last *known* primary head.  A
  replica that cannot prove it meets the floor (cheap ``info`` probe,
  cached for ``probe_ttl`` seconds) is skipped for that read; a replica
  whose connection fails is **evicted** and transparently re-probed
  after ``probe_interval`` seconds.  When no replica qualifies the read
  falls back to the primary; when the primary is down too, the read
  keeps retrying the surviving replicas until ``read_timeout`` — which
  is exactly the "primary died, reads keep flowing under the bound"
  failover mode.

Routing decisions surface as ``routed_reads_total{target=...}`` /
``routed_writes_total`` / ``routed_evictions_total`` metric families on
:attr:`registry`.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.client.client import GraphClient
from repro.exceptions import PrimaryUnavailableError, ReplicationError
from repro.obs.metrics import MetricsRegistry

#: ``(host, port)`` of one serving node.
Endpoint = Tuple[str, int]


class _Node:
    """One endpoint's connection state inside the router."""

    def __init__(self, endpoint: Endpoint, label: str) -> None:
        self.endpoint = (str(endpoint[0]), int(endpoint[1]))
        self.label = label
        self.client: Optional[GraphClient] = None
        self.evicted_at: Optional[float] = None
        #: graph -> (head_version, probed_at)
        self.versions: Dict[str, Tuple[int, float]] = {}


class RoutedClient:
    """Read/write-splitting client over one primary and N replicas.

    Parameters
    ----------
    primary:
        ``(host, port)`` of the writable :class:`~repro.server.GraphServer`.
    replicas:
        ``(host, port)`` of each :class:`~repro.replication.ReplicaServer`.
        An empty sequence routes every read to the primary.
    graph:
        Default tenant for every call (override per call with ``graph=``).
    read_your_writes:
        Pin this client's reads to versions >= its last acknowledged
        write (per tenant).
    max_staleness:
        Optional bound, in *versions*, on how far behind the last known
        primary head a serving replica may be.  ``None`` means any
        replicated version is acceptable (modulo ``read_your_writes``).
    """

    def __init__(
        self,
        primary: Endpoint,
        replicas: Sequence[Endpoint] = (),
        graph: Optional[str] = None,
        read_your_writes: bool = True,
        max_staleness: Optional[int] = None,
        probe_ttl: float = 0.25,
        probe_interval: float = 1.0,
        read_timeout: float = 10.0,
        timeout: Optional[float] = 60.0,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self._graph = graph
        self._read_your_writes = bool(read_your_writes)
        self._max_staleness = max_staleness
        self._probe_ttl = float(probe_ttl)
        self._probe_interval = float(probe_interval)
        self._read_timeout = float(read_timeout)
        self._timeout = timeout
        self._lock = threading.RLock()
        self._primary = _Node(primary, "primary")
        self._replicas = [
            _Node(endpoint, f"replica-{index}")
            for index, endpoint in enumerate(replicas)
        ]
        self._rr = itertools.count()
        #: graph -> last version this client's writes were acknowledged at
        self._last_written: Dict[str, int] = {}
        #: graph -> last primary head this client observed
        self._known_head: Dict[str, int] = {}
        self._closed = False
        self.registry = registry if registry is not None else MetricsRegistry()
        self._m_reads = self.registry.counter(
            "routed_reads_total",
            "Reads dispatched, by serving node",
            labelnames=("target",),
        )
        self._m_writes = self.registry.counter(
            "routed_writes_total", "Writes dispatched to the primary"
        )
        self._m_evictions = self.registry.counter(
            "routed_evictions_total", "Replica connections evicted after failures"
        )

    # ------------------------------------------------------------------ #
    # node plumbing
    # ------------------------------------------------------------------ #

    def _connect(self, node: _Node) -> Optional[GraphClient]:
        """The node's live client, (re)connecting if due; None while evicted."""
        if node.client is not None:
            return node.client
        if (
            node.evicted_at is not None
            and time.monotonic() - node.evicted_at < self._probe_interval
        ):
            return None
        try:
            # Routing owns the failure semantics, so the inner clients
            # do not transparently retry on their own.
            node.client = GraphClient(
                node.endpoint[0],
                node.endpoint[1],
                timeout=self._timeout,
                reconnect=False,
            )
            node.evicted_at = None
            return node.client
        except OSError:
            node.evicted_at = time.monotonic()
            return None

    def _evict(self, node: _Node) -> None:
        if node.client is not None:
            try:
                node.client.close()
            except Exception:
                pass
            node.client = None
        node.evicted_at = time.monotonic()
        node.versions.clear()
        self._m_evictions.inc()

    def _graph_name(self, graph: Optional[str]) -> str:
        name = graph or self._graph
        if not name:
            raise ReplicationError(
                "no graph selected: pass graph=..., or set one at construction"
            )
        return name

    # ------------------------------------------------------------------ #
    # staleness accounting
    # ------------------------------------------------------------------ #

    def _version_floor(self, graph: str) -> int:
        """The minimum version a node must serve for this read, or -1."""
        floor = -1
        if self._read_your_writes:
            floor = max(floor, self._last_written.get(graph, -1))
        if self._max_staleness is not None:
            head = self._known_head.get(graph, -1)
            if head >= 0:
                floor = max(floor, head - int(self._max_staleness))
        return floor

    def _meets_floor(self, node: _Node, client: GraphClient, graph: str, floor: int) -> bool:
        if floor < 0:
            return True
        cached = node.versions.get(graph)
        now = time.monotonic()
        if cached is not None and cached[0] >= floor:
            return True  # versions are monotone: an old "fresh enough" stays true
        if cached is not None and now - cached[1] < self._probe_ttl:
            return False
        version = int(client.info(graph=graph)["head_version"])
        node.versions[graph] = (version, now)
        return version >= floor

    def _note_write(self, graph: str, new_version) -> None:
        if new_version is None:
            return
        version = int(new_version)
        self._last_written[graph] = max(self._last_written.get(graph, -1), version)
        self._known_head[graph] = max(self._known_head.get(graph, -1), version)

    # ------------------------------------------------------------------ #
    # routing cores
    # ------------------------------------------------------------------ #

    def _write(self, method: str, *args, graph: Optional[str] = None, **kwargs):
        """Dispatch one write to the primary; never retried, never rerouted."""
        with self._lock:
            client = self._connect(self._primary)
            if client is None:
                raise PrimaryUnavailableError(
                    f"primary {self._primary.endpoint} is unreachable — "
                    "writes have no failover"
                )
            try:
                if graph is not None:
                    kwargs["graph"] = graph
                result = getattr(client, method)(*args, **kwargs)
            except TimeoutError:
                raise
            except (ConnectionError, OSError) as exc:
                self._evict(self._primary)
                raise PrimaryUnavailableError(
                    f"primary {self._primary.endpoint} dropped during {method}: {exc}"
                ) from exc
            self._m_writes.inc()
            return result

    def _read(self, method: str, *args, graph: Optional[str] = None, **kwargs):
        """Dispatch one read: qualified replicas first, then the primary."""
        name = self._graph_name(graph)
        kwargs["graph"] = name
        with self._lock:
            floor = self._version_floor(name)
            deadline = time.monotonic() + self._read_timeout
            while True:
                outcome = self._try_read_once(method, name, floor, args, kwargs)
                if outcome is not None:
                    return outcome[0]
                if time.monotonic() >= deadline:
                    raise ReplicationError(
                        f"no node can serve {method} on {name!r} at version "
                        f">= {floor} (primary unreachable, "
                        f"{len(self._replicas)} replica(s) configured)"
                    )
                time.sleep(0.05)  # wait for a replica to fold up to the floor

    def _try_read_once(self, method, name, floor, args, kwargs):
        """One pass over the topology; ``(result,)`` or None to retry."""
        offset = next(self._rr)
        count = len(self._replicas)
        for step in range(count):
            node = self._replicas[(offset + step) % count]
            client = self._connect(node)
            if client is None:
                continue
            try:
                if not self._meets_floor(node, client, name, floor):
                    continue
                result = getattr(client, method)(*args, **kwargs)
            except TimeoutError:
                raise
            except (ConnectionError, OSError):
                self._evict(node)
                continue
            self._m_reads.labels(node.label).inc()
            return (result,)
        # No replica qualified (all evicted, stale, or none configured).
        client = self._connect(self._primary)
        if client is not None:
            try:
                result = getattr(client, method)(*args, **kwargs)
                self._m_reads.labels(self._primary.label).inc()
                return (result,)
            except TimeoutError:
                raise
            except (ConnectionError, OSError):
                self._evict(self._primary)
        return None

    # ------------------------------------------------------------------ #
    # writes -> primary
    # ------------------------------------------------------------------ #

    def ingest(self, labels=(), edges=(), remove_edges=(), graph=None):
        """Fold nodes/edges on the primary; advances the read floor."""
        name = self._graph_name(graph)
        report = self._write(
            "ingest", labels=labels, edges=edges, remove_edges=remove_edges, graph=name
        )
        self._note_write(name, report.new_version)
        return report

    def apply(self, delta, graph=None):
        """Fold a prepared delta on the primary; advances the read floor."""
        name = self._graph_name(graph)
        report = self._write("apply", delta, graph=name)
        self._note_write(name, report.new_version)
        return report

    def apply_async(self, delta, graph=None):
        """Queue a delta on the primary's background writer.

        The returned handle's ``result()`` reports the folded version;
        call :meth:`note_version` with it to advance this client's
        read-your-writes floor (an unresolved async fold has no version
        to pin to yet).
        """
        return self._write("apply_async", delta, graph=self._graph_name(graph))

    def checkpoint(self, graph=None):
        """Checkpoint the durable tenant on the primary."""
        return self._write("checkpoint", graph=self._graph_name(graph))

    def create_graph(self, name, labels=(), edges=(), exist_ok=False):
        """Create a tenant on the primary (replicas pick it up when tailed)."""
        info = self._write(
            "create_graph", name, labels=labels, edges=edges, exist_ok=exist_ok
        )
        if self._graph is None:
            self._graph = name
        self._note_write(name, info.get("head_version"))
        return info

    def drop_graph(self, name, force=False, delete_storage=False):
        """Drop a tenant on the primary."""
        result = self._write(
            "drop_graph", name, force=force, delete_storage=delete_storage
        )
        if self._graph == name:
            self._graph = None
        return result

    def save(self, path, graph=None):
        """Persist the tenant's head on the primary; returns the path."""
        return self._write("save", path, graph=self._graph_name(graph))

    def note_version(self, version, graph=None) -> None:
        """Manually advance the read-your-writes floor (async fold results)."""
        self._note_write(self._graph_name(graph), version)

    # ------------------------------------------------------------------ #
    # reads -> replicas (primary fallback)
    # ------------------------------------------------------------------ #

    def query(self, query, graph=None, **kwargs):
        """Evaluate one query on a qualified replica."""
        return self._read("query", query, graph=graph, **kwargs)

    def count(self, query, graph=None, **kwargs):
        """Occurrence count on a qualified replica."""
        return self._read("count", query, graph=graph, **kwargs)

    def explain(self, query, graph=None, **kwargs):
        """EXPLAIN (or EXPLAIN ANALYZE) on a qualified replica."""
        return self._read("explain", query, graph=graph, **kwargs)

    def histogram(self, query, graph=None, **kwargs):
        """Per-label histogram on a qualified replica."""
        return self._read("histogram", query, graph=graph, **kwargs)

    def run_batch(self, queries, graph=None, **kwargs):
        """Execute a batch against one qualified replica's pinned version."""
        return self._read("run_batch", queries, graph=graph, **kwargs)

    def stream(self, query, graph=None, **kwargs):
        """Open a pipelined stream on a qualified replica.

        The stream stays bound to the node that opened it; a connection
        lost mid-stream raises there (pages are connection-scoped) and
        the *next* routed call moves on to a surviving node.
        """
        return self._read("stream", query, graph=graph, **kwargs)

    def info(self, graph=None):
        """Head version / node / edge counts from a qualified node."""
        return self._read("info", graph=graph)

    # ------------------------------------------------------------------ #
    # topology introspection
    # ------------------------------------------------------------------ #

    def replica_status(self, graph=None) -> List[Dict[str, object]]:
        """Replication status of every configured replica (reachable ones)."""
        name = self._graph_name(graph)
        statuses: List[Dict[str, object]] = []
        with self._lock:
            for node in self._replicas:
                client = self._connect(node)
                if client is None:
                    statuses.append(
                        {"target": node.label, "reachable": False}
                    )
                    continue
                try:
                    status = client.replica_status(graph=name)
                except (ConnectionError, OSError):
                    self._evict(node)
                    statuses.append({"target": node.label, "reachable": False})
                    continue
                status = dict(status)
                status.update({"target": node.label, "reachable": True})
                statuses.append(status)
        return statuses

    def local_metrics(self) -> Dict[str, object]:
        """This router's metric families (reads by target, writes, evictions)."""
        return self.registry.snapshot()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Close every node connection (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for node in [self._primary, *self._replicas]:
            if node.client is not None:
                try:
                    node.client.close()
                except Exception:
                    pass
                node.client = None

    def __enter__(self) -> "RoutedClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RoutedClient(primary={self._primary.endpoint}, "
            f"replicas={[node.endpoint for node in self._replicas]}, "
            f"graph={self._graph!r})"
        )
