"""Wire-protocol client: the :class:`~repro.api.GraphDB` facade over a socket.

* :class:`GraphClient` — synchronous client mirroring the facade's API;
* :class:`RemoteStream` — lazy, credit-gated page iteration;
* :class:`RemoteSnapshot` — a server-side pin for repeated consistent reads;
* :class:`RemoteApplyHandle` — the future of an async fold.
"""

from repro.client.client import (
    GraphClient,
    RemoteApplyHandle,
    RemoteSnapshot,
    RemoteStream,
)

__all__ = [
    "GraphClient",
    "RemoteApplyHandle",
    "RemoteSnapshot",
    "RemoteStream",
]
