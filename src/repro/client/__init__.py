"""Wire-protocol client: the :class:`~repro.api.GraphDB` facade over a socket.

* :class:`GraphClient` — synchronous client mirroring the facade's API,
  with transparent bounded-backoff reconnect for idempotent reads;
* :class:`RoutedClient` — read/write splitting across a primary and its
  replicas (round-robin reads, staleness floors, eviction + re-probe);
* :class:`RemoteStream` — lazy, credit-gated page iteration;
* :class:`RemoteSnapshot` — a server-side pin for repeated consistent reads;
* :class:`RemoteApplyHandle` — the future of an async fold.
"""

from repro.client.client import (
    GraphClient,
    RemoteApplyHandle,
    RemoteSnapshot,
    RemoteStream,
)
from repro.client.routed import RoutedClient

__all__ = [
    "GraphClient",
    "RemoteApplyHandle",
    "RemoteSnapshot",
    "RemoteStream",
    "RoutedClient",
]
