"""Mutable overlay over an immutable :class:`DataGraph`.

:class:`MutableDataGraph` presents the full read API of
:class:`repro.graph.digraph.DataGraph` — adjacency, inverted label lists,
traversals, edge tests — over an immutable base graph plus an in-memory
overlay of pending mutations (delta adjacency, delta inverted lists).  Reads
on untouched nodes and labels are delegated straight to the base structure;
only "dirty" nodes/labels pay the merge cost, which is cached per node and
per label until the next mutation.

Two ways to use it:

* **batched**: build a :class:`repro.dynamic.GraphDelta` and hand it to
  :meth:`apply` (or the constructor) — one version bump per batch;
* **direct**: call :meth:`add_node` / :meth:`add_edge` /
  :meth:`remove_edge` / :meth:`relabel`; each call is its own single-op
  batch.

Every batch bumps the monotone :attr:`version` (starting from the base
graph's version).  :meth:`materialize` freezes the current state into a
fresh :class:`DataGraph` carrying that version; :meth:`delta_since_base`
returns the *effective* accumulated delta (no-op mutations, e.g. inserting
an edge that already exists, are not recorded), which is what the
incremental index-maintenance paths consume.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.dynamic.delta import (
    OP_ADD_EDGE,
    OP_ADD_NODE,
    OP_RELABEL,
    OP_REMOVE_EDGE,
    GraphDelta,
)
from repro.exceptions import GraphError
from repro.graph.digraph import DataGraph


class MutableDataGraph:
    """A :class:`DataGraph`-compatible view of ``base`` plus pending edits."""

    def __init__(self, base: DataGraph, delta: Optional[GraphDelta] = None) -> None:
        self._base = base
        self.name = base.name
        self.version = base.version
        self._extra_labels: List[str] = []
        self._relabels: Dict[int, str] = {}
        self._added_succ: Dict[int, Set[int]] = {}
        self._added_pred: Dict[int, Set[int]] = {}
        self._removed_succ: Dict[int, Set[int]] = {}
        self._removed_pred: Dict[int, Set[int]] = {}
        self._num_edges = base.num_edges
        self._succ_cache: Dict[int, Tuple[int, ...]] = {}
        self._pred_cache: Dict[int, Tuple[int, ...]] = {}
        self._succ_set_cache: Dict[int, frozenset] = {}
        self._pred_set_cache: Dict[int, frozenset] = {}
        self._dirty_labels: Set[str] = set()
        self._inverted_cache: Dict[str, Tuple[int, ...]] = {}
        self._delta = GraphDelta(base.num_nodes)
        if delta is not None:
            self.apply(delta)

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #

    def _check_node(self, node: int) -> None:
        if not (0 <= node < self.num_nodes):
            raise GraphError(f"node {node} outside 0..{self.num_nodes - 1}")

    def _touch_edge(self, source: int, target: int) -> None:
        self._succ_cache.pop(source, None)
        self._succ_set_cache.pop(source, None)
        self._pred_cache.pop(target, None)
        self._pred_set_cache.pop(target, None)

    def _do_add_node(self, label: str) -> int:
        label = str(label)
        if not label:
            raise GraphError("node label must be non-empty")
        node = self.num_nodes
        self._extra_labels.append(label)
        self._dirty_labels.add(label)
        self._inverted_cache.pop(label, None)
        self._delta.add_node(label)
        return node

    def _do_add_edge(self, source: int, target: int) -> bool:
        self._check_node(source)
        self._check_node(target)
        if self.has_edge(source, target):
            return False
        removed = self._removed_succ.get(source)
        if removed is not None and target in removed:
            removed.discard(target)
            self._removed_pred[target].discard(source)
        else:
            self._added_succ.setdefault(source, set()).add(target)
            self._added_pred.setdefault(target, set()).add(source)
        self._num_edges += 1
        self._touch_edge(source, target)
        self._delta.add_edge(source, target)
        return True

    def _do_remove_edge(self, source: int, target: int) -> bool:
        self._check_node(source)
        self._check_node(target)
        if not self.has_edge(source, target):
            raise GraphError(f"edge ({source}, {target}) does not exist")
        added = self._added_succ.get(source)
        if added is not None and target in added:
            added.discard(target)
            self._added_pred[target].discard(source)
        else:
            self._removed_succ.setdefault(source, set()).add(target)
            self._removed_pred.setdefault(target, set()).add(source)
        self._num_edges -= 1
        self._touch_edge(source, target)
        self._delta.remove_edge(source, target)
        return True

    def _do_relabel(self, node: int, label: str) -> bool:
        self._check_node(node)
        label = str(label)
        if not label:
            raise GraphError("node label must be non-empty")
        old = self.label(node)
        if old == label:
            return False
        if node >= self._base.num_nodes:
            self._extra_labels[node - self._base.num_nodes] = label
        else:
            self._relabels[node] = label
        self._dirty_labels.update((old, label))
        self._inverted_cache.pop(old, None)
        self._inverted_cache.pop(label, None)
        self._delta.relabel(node, label)
        return True

    def add_node(self, label: str) -> int:
        """Append a node carrying ``label``; returns its id.  Bumps version."""
        node = self._do_add_node(label)
        self.version += 1
        return node

    def add_edge(self, source: int, target: int) -> bool:
        """Insert edge ``(source, target)``.  Returns False if it existed."""
        changed = self._do_add_edge(source, target)
        if changed:
            self.version += 1
        return changed

    def remove_edge(self, source: int, target: int) -> None:
        """Remove edge ``(source, target)``; raises if it does not exist."""
        self._do_remove_edge(source, target)
        self.version += 1

    def relabel(self, node: int, label: str) -> bool:
        """Change the label of ``node``.  Returns False if unchanged."""
        changed = self._do_relabel(node, label)
        if changed:
            self.version += 1
        return changed

    def apply(self, delta: GraphDelta) -> "MutableDataGraph":
        """Replay one batched delta; a single version bump for the batch.

        A batch whose every operation is a no-op (e.g. inserting edges that
        already exist) leaves the version unchanged — the graph state did
        not change, so dependents must not observe a new version.
        """
        if delta.base_num_nodes != self.num_nodes:
            raise GraphError(
                f"delta is based on {delta.base_num_nodes} nodes but the "
                f"graph has {self.num_nodes}"
            )
        effective_before = len(self._delta)
        for op in delta.ops:
            if op[0] == OP_ADD_NODE:
                self._do_add_node(op[1])
            elif op[0] == OP_ADD_EDGE:
                self._do_add_edge(op[1], op[2])
            elif op[0] == OP_REMOVE_EDGE:
                self._do_remove_edge(op[1], op[2])
            elif op[0] == OP_RELABEL:
                self._do_relabel(op[1], op[2])
            else:  # pragma: no cover - GraphDelta validates on record
                raise GraphError(f"unknown delta operation {op!r}")
        if len(self._delta) > effective_before:
            self.version += 1
        return self

    def delta_since_base(self) -> GraphDelta:
        """The effective delta accumulated since construction.

        No-op mutations (inserting an existing edge, relabelling to the same
        label) are absent, so index-maintenance code can treat every
        recorded op as a real change.
        """
        return GraphDelta.from_dict(self._delta.to_dict())

    # ------------------------------------------------------------------ #
    # basic accessors (DataGraph read API)
    # ------------------------------------------------------------------ #

    @property
    def base(self) -> DataGraph:
        """The immutable graph underneath the overlay."""
        return self._base

    @property
    def num_nodes(self) -> int:
        """Number of nodes (base + added)."""
        return self._base.num_nodes + len(self._extra_labels)

    @property
    def num_edges(self) -> int:
        """Number of distinct directed edges after the overlay."""
        return self._num_edges

    @property
    def labels(self) -> Tuple[str, ...]:
        """Tuple of node labels indexed by node id (computed on access)."""
        return tuple(self.label(node) for node in range(self.num_nodes))

    def nodes(self) -> range:
        """Iterate over node ids."""
        return range(self.num_nodes)

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over all ``(source, target)`` edges."""
        for source in range(self.num_nodes):
            for target in self.successors(source):
                yield (source, target)

    def label(self, node: int) -> str:
        """Return the label of ``node``."""
        base_n = self._base.num_nodes
        if node >= base_n:
            return self._extra_labels[node - base_n]
        return self._relabels.get(node) or self._base.label(node)

    def label_alphabet(self) -> Tuple[str, ...]:
        """Sorted tuple of distinct labels with at least one member."""
        candidates = set(self._base.label_alphabet()) | self._dirty_labels
        return tuple(
            sorted(label for label in candidates if self.inverted_list(label))
        )

    def num_labels(self) -> int:
        """Number of distinct labels currently in use."""
        return len(self.label_alphabet())

    # ------------------------------------------------------------------ #
    # adjacency
    # ------------------------------------------------------------------ #

    def _merged_adjacency(
        self,
        node: int,
        base_list: Tuple[int, ...],
        added: Dict[int, Set[int]],
        removed: Dict[int, Set[int]],
    ) -> Tuple[int, ...]:
        extra = added.get(node)
        gone = removed.get(node)
        if not extra and not gone:
            return base_list
        merged = set(base_list)
        if gone:
            merged -= gone
        if extra:
            merged |= extra
        return tuple(sorted(merged))

    def successors(self, node: int) -> Tuple[int, ...]:
        """Sorted forward adjacency list (children) of ``node``."""
        cached = self._succ_cache.get(node)
        if cached is not None:
            return cached
        base = (
            self._base.successors(node) if node < self._base.num_nodes else ()
        )
        merged = self._merged_adjacency(node, base, self._added_succ, self._removed_succ)
        self._succ_cache[node] = merged
        return merged

    def predecessors(self, node: int) -> Tuple[int, ...]:
        """Sorted backward adjacency list (parents) of ``node``."""
        cached = self._pred_cache.get(node)
        if cached is not None:
            return cached
        base = (
            self._base.predecessors(node) if node < self._base.num_nodes else ()
        )
        merged = self._merged_adjacency(node, base, self._added_pred, self._removed_pred)
        self._pred_cache[node] = merged
        return merged

    def successor_set(self, node: int) -> frozenset:
        """Frozenset of children of ``node``."""
        cached = self._succ_set_cache.get(node)
        if cached is None:
            if (
                node < self._base.num_nodes
                and node not in self._added_succ
                and node not in self._removed_succ
            ):
                cached = self._base.successor_set(node)
            else:
                cached = frozenset(self.successors(node))
            self._succ_set_cache[node] = cached
        return cached

    def predecessor_set(self, node: int) -> frozenset:
        """Frozenset of parents of ``node``."""
        cached = self._pred_set_cache.get(node)
        if cached is None:
            if (
                node < self._base.num_nodes
                and node not in self._added_pred
                and node not in self._removed_pred
            ):
                cached = self._base.predecessor_set(node)
            else:
                cached = frozenset(self.predecessors(node))
            self._pred_set_cache[node] = cached
        return cached

    def has_edge(self, source: int, target: int) -> bool:
        """Return True if the directed edge ``(source, target)`` exists."""
        removed = self._removed_succ.get(source)
        if removed is not None and target in removed:
            return False
        added = self._added_succ.get(source)
        if added is not None and target in added:
            return True
        return source < self._base.num_nodes and self._base.has_edge(source, target)

    def has_edge_binary_search(self, source: int, target: int) -> bool:
        """Edge test by binary search over the merged adjacency list."""
        adjacency = self.successors(source)
        index = bisect_left(adjacency, target)
        return index < len(adjacency) and adjacency[index] == target

    def out_degree(self, node: int) -> int:
        """Number of outgoing edges of ``node``."""
        return len(self.successors(node))

    def in_degree(self, node: int) -> int:
        """Number of incoming edges of ``node``."""
        return len(self.predecessors(node))

    def degree(self, node: int) -> int:
        """Total (in + out) degree of ``node``."""
        return self.out_degree(node) + self.in_degree(node)

    # ------------------------------------------------------------------ #
    # inverted label lists
    # ------------------------------------------------------------------ #

    def inverted_list(self, label: str) -> Tuple[int, ...]:
        """Sorted inverted list ``I_label`` after the overlay."""
        if label not in self._dirty_labels:
            return self._base.inverted_list(label)
        cached = self._inverted_cache.get(label)
        if cached is not None:
            return cached
        members = set(self._base.inverted_list(label))
        for node, new_label in self._relabels.items():
            if new_label == label:
                members.add(node)
            else:
                members.discard(node)
        base_n = self._base.num_nodes
        for offset, extra_label in enumerate(self._extra_labels):
            if extra_label == label:
                members.add(base_n + offset)
        result = tuple(sorted(members))
        self._inverted_cache[label] = result
        return result

    def inverted_set(self, label: str) -> frozenset:
        """Frozenset variant of :meth:`inverted_list`."""
        if label not in self._dirty_labels:
            return self._base.inverted_set(label)
        return frozenset(self.inverted_list(label))

    def inverted_lists(self) -> Dict[str, Tuple[int, ...]]:
        """Mapping from every label to its inverted list."""
        return {label: self.inverted_list(label) for label in self.label_alphabet()}

    def max_inverted_list_size(self) -> int:
        """Size of the largest inverted list."""
        sizes = [len(self.inverted_list(label)) for label in self.label_alphabet()]
        return max(sizes) if sizes else 0

    # ------------------------------------------------------------------ #
    # traversal helpers
    # ------------------------------------------------------------------ #

    def bfs_forward(self, source: int) -> List[int]:
        """Return all nodes reachable from ``source`` (including itself)."""
        visited = [False] * self.num_nodes
        visited[source] = True
        order = [source]
        frontier = [source]
        while frontier:
            next_frontier: List[int] = []
            for node in frontier:
                for child in self.successors(node):
                    if not visited[child]:
                        visited[child] = True
                        order.append(child)
                        next_frontier.append(child)
            frontier = next_frontier
        return order

    def bfs_backward(self, source: int) -> List[int]:
        """Return all nodes that can reach ``source`` (including itself)."""
        visited = [False] * self.num_nodes
        visited[source] = True
        order = [source]
        frontier = [source]
        while frontier:
            next_frontier: List[int] = []
            for node in frontier:
                for parent in self.predecessors(node):
                    if not visited[parent]:
                        visited[parent] = True
                        order.append(parent)
                        next_frontier.append(parent)
            frontier = next_frontier
        return order

    def reaches_bfs(self, source: int, target: int) -> bool:
        """Ground-truth reachability check by BFS."""
        if source == target:
            return True
        visited = [False] * self.num_nodes
        visited[source] = True
        frontier = [source]
        while frontier:
            next_frontier: List[int] = []
            for node in frontier:
                for child in self.successors(node):
                    if child == target:
                        return True
                    if not visited[child]:
                        visited[child] = True
                        next_frontier.append(child)
            frontier = next_frontier
        return False

    # ------------------------------------------------------------------ #
    # freezing
    # ------------------------------------------------------------------ #

    def is_dirty(self) -> bool:
        """True if any effective mutation has been applied since the base."""
        return bool(self._delta)

    def materialize(self, name: Optional[str] = None) -> DataGraph:
        """Freeze the overlay into a fresh immutable :class:`DataGraph`.

        The result carries the overlay's current :attr:`version`.  When no
        effective mutation happened, the base graph is returned as-is.
        """
        if not self.is_dirty():
            return self._base
        return DataGraph(
            self.labels,
            self.edges(),
            name=name or self.name,
            version=self.version,
        )

    # ------------------------------------------------------------------ #
    # dunder helpers
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self.num_nodes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MutableDataGraph(name={self.name!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges}, version={self.version}, "
            f"pending_ops={len(self._delta)})"
        )
