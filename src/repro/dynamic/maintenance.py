"""Rebuild-vs-patch decisions and artifact patch helpers.

The dynamic subsystem keeps the :class:`repro.session.QuerySession` caches
alive across graph updates.  Each cached artifact falls into one of three
maintenance classes:

* **incrementally patchable** — the reachability index and the transitive
  closure (``apply_delta`` on the index classes), the per-label bitmaps and
  the EH edge partitions (helpers below), and — for insert-only deltas —
  the closure-expanded graph (:func:`patch_expanded_graph`, fed by the
  closure patch's added pairs) and the GF catalog
  (:func:`repro.engines.wcoj.patch_catalog`);
* **cheaply recomputable and lazily rebuilt** — the label summaries inside
  the match context, and any of the above artifacts whose delta shape was
  not patchable;
* **per-query** — RIG caches and matcher instances, which are dropped on
  every version bump (they embed node candidates of the old state).

:func:`should_patch` is the cost heuristic gating the first class: patching
pays off for small insertion-only deltas, while deletion-bearing or bulk
deltas fall back to a rebuild.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.dynamic.delta import GraphDelta

#: Deltas whose edge insertions exceed this fraction of the graph's current
#: edge count are rebuilt rather than patched: each inserted edge costs one
#: targeted traversal / closure-column scan, so beyond a fraction of |E| the
#: linear-pass rebuild is cheaper.
PATCH_EDGE_FRACTION = 0.25

#: Small graphs: always patch below this many inserted edges (the constant
#: costs of a rebuild dominate no matter the fraction).
PATCH_MIN_EDGES = 16


def should_patch(graph, delta: GraphDelta) -> bool:
    """Decide between incremental patching and a full rebuild.

    ``graph`` is the *pre-delta* graph (any object with ``num_edges``).
    Deltas with edge removals always rebuild — the reachability structures
    are monotone under insertion only.  Insertion deltas patch unless they
    are bulk-sized relative to the graph.
    """
    if delta.has_removals:
        return False
    num_inserts = len(delta.added_edges) + delta.num_added_nodes
    if num_inserts <= PATCH_MIN_EDGES:
        return True
    return num_inserts <= max(PATCH_MIN_EDGES, int(graph.num_edges * PATCH_EDGE_FRACTION))


# ---------------------------------------------------------------------- #
# artifact patch helpers
# ---------------------------------------------------------------------- #


def patch_label_bitmaps(bitmaps: Dict[str, object], graph, delta: GraphDelta) -> bool:
    """Refresh per-label Roaring bitmaps in place for ``delta``.

    Edge operations do not touch label membership, so any delta is
    patchable: added nodes are appended to their label's bitmap, and the
    (at most two) bitmaps affected by each relabel are rebuilt from the
    patched graph's inverted lists — a targeted rebuild touching only dirty
    labels.  ``graph`` is the post-delta graph.  Always returns True.
    """
    from repro.bitmap.roaring import RoaringBitmap

    for node_id, label in delta.added_nodes:
        bitmap = bitmaps.get(label)
        if bitmap is None:
            bitmaps[label] = RoaringBitmap((node_id,))
        else:
            bitmap.add(node_id)
    if delta.has_relabels:
        # Every label that gained members is a relabel target; labels that
        # only lost members show up as a size mismatch against the graph.
        # (A pure membership swap leaves sizes equal, but then both labels
        # are relabel targets and are already dirty.)
        dirty = {new_label for _node, new_label in delta.relabels}
        for label in list(bitmaps):
            if len(bitmaps[label]) != len(graph.inverted_list(label)):
                dirty.add(label)
        for label in dirty:
            members = graph.inverted_list(label)
            if members:
                bitmaps[label] = RoaringBitmap.from_sorted(members)
            else:
                bitmaps.pop(label, None)
    return True


def patch_universe(universe, delta: GraphDelta) -> bool:
    """Extend the node-universe bitmap with the delta's added node ids."""
    for node_id, _label in delta.added_nodes:
        universe.add(node_id)
    return True


def patch_expanded_graph(expanded, new_graph, delta: GraphDelta, closure_additions):
    """Patch the closure-expanded data graph for an insert-only delta.

    The expanded graph is ``graph edges ∪ closure pairs``; an insert-only
    delta can only ever *add* members to both sets, so the new expanded
    graph is the old one plus the delta's nodes/edges plus exactly the
    reachable pairs the closure patch added (``closure_additions``, the
    ``(source, added_mask)`` rows from
    :meth:`TransitiveClosureIndex.last_patch_additions`).  The overlay work
    is proportional to the delta, not to the closure; only the final
    freeze into an immutable :class:`DataGraph` pays the usual
    construction pass.

    Returns the patched expanded graph (carrying ``new_graph``'s version so
    engine staleness checks accept it), or ``None`` when the delta shape is
    not patchable (removals / relabels change label keys and reachable
    pairs non-monotonically — rebuild lazily instead).
    """
    if not delta.is_insert_only:
        return None
    from repro.bitmap.intbitset import IntBitSet
    from repro.dynamic.overlay import MutableDataGraph
    from repro.graph.digraph import DataGraph

    overlay = MutableDataGraph(expanded)
    for _node, label in delta.added_nodes:
        overlay.add_node(label)
    for source, target in delta.added_edges:
        overlay.add_edge(source, target)
    for source, mask in closure_additions:
        for target in IntBitSet.from_mask(mask):
            if target != source:
                overlay.add_edge(source, target)
    # Freeze with the *data graph's* version, not the overlay's per-batch
    # bumped one: the expanded graph must carry the version it serves.
    return DataGraph(
        overlay.labels,
        overlay.edges(),
        name=expanded.name,
        version=getattr(new_graph, "version", 0),
    )


def patch_partitions(
    partitions: Dict[Tuple[str, str], List[Tuple[int, int]]], graph, delta: GraphDelta
) -> bool:
    """Append inserted edges to the EH label-pair partitions in place.

    Only insertion-only deltas are patchable: a removal or relabel moves
    edges between partitions, which would need per-partition rescans —
    cheaper to rebuild lazily.  ``graph`` is the post-delta graph (used for
    endpoint labels).  Returns False (partitions untouched) when the delta
    shape is not patchable.
    """
    if not delta.is_insert_only:
        return False
    for source, target in delta.added_edges:
        key = (graph.label(source), graph.label(target))
        partitions.setdefault(key, []).append((source, target))
    return True


# ---------------------------------------------------------------------- #
# apply outcome
# ---------------------------------------------------------------------- #


@dataclass
class ApplyReport:
    """Outcome of one :meth:`repro.session.QuerySession.apply` call.

    ``patched`` artifacts were updated in place (their build cost was
    saved); ``invalidated`` artifacts were dropped and will rebuild lazily
    on next use; artifacts that had never been built appear in neither
    list.
    """

    old_version: int
    new_version: int
    num_ops: int
    seconds: float
    patched: List[str] = field(default_factory=list)
    invalidated: List[str] = field(default_factory=list)

    def summary(self) -> str:
        """One-line human-readable outcome."""
        return (
            f"apply v{self.old_version}->v{self.new_version}: {self.num_ops} ops "
            f"in {self.seconds * 1000:.2f}ms; patched=[{', '.join(self.patched)}] "
            f"invalidated=[{', '.join(self.invalidated)}]"
        )
