"""Batched graph mutations: the :class:`GraphDelta` change log.

A :class:`GraphDelta` records a batch of structural edits against a base
graph — node additions, edge insertions, edge removals and relabels — as an
ordered operation log.  The log is the unit of change throughout the dynamic
subsystem:

* :class:`repro.dynamic.MutableDataGraph` replays a delta as a cheap overlay
  (or accumulates one while being mutated directly);
* the incremental index-maintenance paths
  (:meth:`repro.reachability.bfl.BloomFilterLabeling.apply_delta`,
  :meth:`repro.reachability.transitive_closure.TransitiveClosureIndex.apply_delta`)
  consume the *effective* delta to patch their structures in place;
* :meth:`repro.session.QuerySession.apply` uses the delta's shape
  (insert-only or not) to decide, per cached artifact, between patching and
  invalidation.

Deltas are serialisable (:meth:`to_dict` / :meth:`from_dict`) so an update
feed can be persisted next to its graph (see :mod:`repro.graph.io`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.exceptions import GraphError

#: Operation tags used in the log (and the JSON serialisation).
OP_ADD_NODE = "add_node"
OP_ADD_EDGE = "add_edge"
OP_REMOVE_EDGE = "remove_edge"
OP_RELABEL = "relabel"

_KNOWN_OPS = (OP_ADD_NODE, OP_ADD_EDGE, OP_REMOVE_EDGE, OP_RELABEL)


class GraphDelta:
    """An ordered batch of graph mutations against a base of ``base_num_nodes``.

    Parameters
    ----------
    base_num_nodes:
        Number of nodes of the graph the delta is written against.  New
        nodes are assigned the next dense ids (``base_num_nodes``,
        ``base_num_nodes + 1``, ...), so :meth:`add_node` can hand out the
        id the node *will* have once the delta is applied.
    base_version:
        The monotone :attr:`DataGraph.version` the delta is written
        against, when known (``None`` for hand-built deltas).  Carried
        through serialisation, so replay paths — the write-ahead log, a
        pending delta persisted next to its graph — can detect that a
        delta was already folded (``base_version < graph.version``) and
        skip it instead of double-applying.

    The recording methods perform only local validation (id range against
    the growing node count, non-empty labels); structural validation against
    the actual base graph — "does the removed edge exist?" — happens when the
    delta is applied to a :class:`repro.dynamic.MutableDataGraph`.
    """

    __slots__ = ("base_num_nodes", "base_version", "_ops", "_num_added_nodes")

    def __init__(self, base_num_nodes: int = 0, base_version: Optional[int] = None) -> None:
        if base_num_nodes < 0:
            raise GraphError(f"negative base node count {base_num_nodes}")
        self.base_num_nodes = base_num_nodes
        self.base_version = None if base_version is None else int(base_version)
        self._ops: List[Tuple] = []
        self._num_added_nodes = 0

    @classmethod
    def for_graph(cls, graph) -> "GraphDelta":
        """A delta written against ``graph`` (any object with ``num_nodes``).

        The graph's monotone ``version`` (0 when it carries none) is
        recorded as :attr:`base_version`.
        """
        return cls(graph.num_nodes, base_version=getattr(graph, "version", 0))

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #

    def _check_node(self, node: int) -> None:
        limit = self.base_num_nodes + self._num_added_nodes
        if not (0 <= node < limit):
            raise GraphError(f"node {node} outside 0..{limit - 1}")

    def add_node(self, label: str) -> int:
        """Record a node addition; return the id the node will carry."""
        if not str(label):
            raise GraphError("node label must be non-empty")
        node = self.base_num_nodes + self._num_added_nodes
        self._ops.append((OP_ADD_NODE, str(label)))
        self._num_added_nodes += 1
        return node

    def add_edge(self, source: int, target: int) -> "GraphDelta":
        """Record a directed edge insertion (chainable)."""
        self._check_node(source)
        self._check_node(target)
        self._ops.append((OP_ADD_EDGE, source, target))
        return self

    def remove_edge(self, source: int, target: int) -> "GraphDelta":
        """Record a directed edge removal (chainable)."""
        self._check_node(source)
        self._check_node(target)
        self._ops.append((OP_REMOVE_EDGE, source, target))
        return self

    def relabel(self, node: int, label: str) -> "GraphDelta":
        """Record a label change of an existing (or freshly added) node."""
        self._check_node(node)
        if not str(label):
            raise GraphError("node label must be non-empty")
        self._ops.append((OP_RELABEL, node, str(label)))
        return self

    # ------------------------------------------------------------------ #
    # shape
    # ------------------------------------------------------------------ #

    @property
    def ops(self) -> Tuple[Tuple, ...]:
        """The operation log, in recording order."""
        return tuple(self._ops)

    def __len__(self) -> int:
        return len(self._ops)

    def __bool__(self) -> bool:
        return bool(self._ops)

    @property
    def num_added_nodes(self) -> int:
        """Number of node additions in the log."""
        return self._num_added_nodes

    @property
    def added_nodes(self) -> List[Tuple[int, str]]:
        """``(node_id, label)`` pairs of the added nodes, in id order."""
        result: List[Tuple[int, str]] = []
        next_id = self.base_num_nodes
        for op in self._ops:
            if op[0] == OP_ADD_NODE:
                result.append((next_id, op[1]))
                next_id += 1
        return result

    @property
    def added_edges(self) -> List[Tuple[int, int]]:
        """Inserted ``(source, target)`` pairs, in recording order."""
        return [(op[1], op[2]) for op in self._ops if op[0] == OP_ADD_EDGE]

    @property
    def removed_edges(self) -> List[Tuple[int, int]]:
        """Removed ``(source, target)`` pairs, in recording order."""
        return [(op[1], op[2]) for op in self._ops if op[0] == OP_REMOVE_EDGE]

    @property
    def relabels(self) -> List[Tuple[int, str]]:
        """``(node, new_label)`` pairs, in recording order."""
        return [(op[1], op[2]) for op in self._ops if op[0] == OP_RELABEL]

    @property
    def has_removals(self) -> bool:
        """True if the log contains at least one edge removal.

        Removals are what force the reachability / closure maintenance
        paths to rebuild: insertions only ever *add* reachable pairs, which
        the incremental patches exploit.
        """
        return any(op[0] == OP_REMOVE_EDGE for op in self._ops)

    @property
    def has_relabels(self) -> bool:
        """True if the log contains at least one relabel."""
        return any(op[0] == OP_RELABEL for op in self._ops)

    @property
    def is_insert_only(self) -> bool:
        """True if the log contains only node and edge additions."""
        return not (self.has_removals or self.has_relabels)

    # ------------------------------------------------------------------ #
    # serialisation
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable representation of the delta."""
        payload: Dict[str, object] = {
            "base_num_nodes": self.base_num_nodes,
            "ops": [list(op) for op in self._ops],
        }
        if self.base_version is not None:
            payload["base_version"] = self.base_version
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "GraphDelta":
        """Rebuild a delta from :meth:`to_dict` output (validating ops).

        Malformed operations — unknown tags, wrong arity, non-integer node
        ids — raise :class:`~repro.exceptions.GraphError`, like every other
        corrupt-document path in :mod:`repro.graph.io`.
        """
        try:
            base_version = payload.get("base_version")
            delta = cls(
                int(payload.get("base_num_nodes", 0)),
                base_version=None if base_version is None else int(base_version),
            )
        except (TypeError, ValueError) as exc:
            raise GraphError(f"invalid base_num_nodes in delta payload: {exc}") from exc
        for raw in payload.get("ops", ()):
            op = tuple(raw)
            if not op or op[0] not in _KNOWN_OPS:
                raise GraphError(f"unknown delta operation {raw!r}")
            expected_arity = 2 if op[0] == OP_ADD_NODE else 3
            if len(op) != expected_arity:
                raise GraphError(f"malformed delta operation {raw!r}")
            try:
                if op[0] == OP_ADD_NODE:
                    delta.add_node(op[1])
                elif op[0] == OP_ADD_EDGE:
                    delta.add_edge(int(op[1]), int(op[2]))
                elif op[0] == OP_REMOVE_EDGE:
                    delta.remove_edge(int(op[1]), int(op[2]))
                else:
                    delta.relabel(int(op[1]), op[2])
            except (TypeError, ValueError) as exc:
                raise GraphError(f"malformed delta operation {raw!r}: {exc}") from exc
        return delta

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GraphDelta(base={self.base_num_nodes}, ops={len(self._ops)}, "
            f"+nodes={self.num_added_nodes}, +edges={len(self.added_edges)}, "
            f"-edges={len(self.removed_edges)}, relabels={len(self.relabels)})"
        )


def merged_delta(first: GraphDelta, second: GraphDelta) -> GraphDelta:
    """Concatenate two deltas written against consecutive states.

    ``second`` must be written against the state produced by applying
    ``first`` (its ``base_num_nodes`` equals ``first``'s final node count).
    """
    expected = first.base_num_nodes + first.num_added_nodes
    if second.base_num_nodes != expected:
        raise GraphError(
            f"cannot merge: second delta is based on {second.base_num_nodes} "
            f"nodes, expected {expected}"
        )
    merged = GraphDelta(first.base_num_nodes, base_version=first.base_version)
    for op in first.ops + second.ops:
        merged._ops.append(op)
        if op[0] == OP_ADD_NODE:
            merged._num_added_nodes += 1
    return merged
