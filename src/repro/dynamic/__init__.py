"""Dynamic-graph update subsystem: overlays, deltas, incremental maintenance.

The rest of the library treats a :class:`repro.graph.digraph.DataGraph` as
immutable-after-construction — the property the per-graph artifact caches
(reachability index, transitive closure, bitmaps, RIGs) rely on.  Real
serving scenarios mutate their graphs, though: hierarchies evolve, edge
feeds stream in.  This package provides the machinery that makes
*update-then-query* cheap instead of forcing a cold rebuild:

* :class:`GraphDelta` — an ordered, serialisable batch of mutations
  (``add_node`` / ``add_edge`` / ``remove_edge`` / ``relabel``);
* :class:`MutableDataGraph` — a :class:`DataGraph`-compatible overlay that
  answers adjacency / inverted-list / traversal reads through delta
  structures, and can :meth:`~MutableDataGraph.materialize` into a fresh
  immutable graph carrying a bumped monotone version;
* :func:`should_patch` plus the patch helpers in
  :mod:`repro.dynamic.maintenance` — the rebuild-vs-patch cost heuristic
  and in-place refresh paths for bitmaps and edge partitions (the
  reachability indexes carry their own ``apply_delta`` methods);
* :class:`ApplyReport` — the outcome record of
  :meth:`repro.session.QuerySession.apply`, which ties it all together:
  one call patches or invalidates every cached artifact and bumps the
  session to the new graph version.

>>> delta = GraphDelta.for_graph(graph)
>>> n = delta.add_node("Task")
>>> delta.add_edge(project_id, n)
>>> report = session.apply(delta)          # patches indexes in place
>>> session.query(query)                   # sees the new node immediately
"""

from repro.dynamic.delta import GraphDelta, merged_delta
from repro.dynamic.maintenance import (
    ApplyReport,
    patch_expanded_graph,
    patch_label_bitmaps,
    patch_partitions,
    patch_universe,
    should_patch,
)
from repro.dynamic.overlay import MutableDataGraph

__all__ = [
    "ApplyReport",
    "GraphDelta",
    "MutableDataGraph",
    "merged_delta",
    "patch_expanded_graph",
    "patch_label_bitmaps",
    "patch_partitions",
    "patch_universe",
    "should_patch",
]
