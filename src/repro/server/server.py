"""GraphServer: asyncio TCP serving of a multi-tenant graph catalog.

The server puts the :class:`~repro.api.GraphDB` facade on the wire: every
facade capability — ``ingest`` / ``apply`` / ``apply_async`` / ``query`` /
``stream`` / ``count`` / ``explain`` / ``histogram`` / ``run_batch`` /
``pin`` / ``stats`` / ``save`` — plus the tenant lifecycle of a
:class:`~repro.server.catalog.GraphCatalog` (``create_graph`` /
``drop_graph`` / ``graphs``) is one request frame away (see
:mod:`repro.server.protocol` for the frame format).

Execution model
---------------
The event loop only ever parses frames and routes; every blocking call —
ticket waits, folds, catalog builds, stream pumps — runs on a thread-pool
executor, so one slow query never stalls another connection's frames.
Per-request errors answer with a typed error frame and the connection
lives on; *framing* errors (truncation, non-JSON bodies) are
unrecoverable and close the connection.

Streaming
---------
``stream_open`` starts a server-side :class:`StreamingResult` and a pump
thread that forwards its pages as ``{"stream": s, "seq": k, "page": ...}``
frames under **credit-based flow control**: the pump may run at most
``window`` pages ahead of the client's ``credit`` grants (mirroring the
service's ``stream_buffer_pages`` backpressure), so the client's first
page arrives while the query is still enumerating and a slow client
throttles the producer instead of growing the socket buffer.  A client
that cancels (``stream_cancel``) or disconnects mid-stream closes the
server-side result, which cancels the executing worker cooperatively and
releases its snapshot pin — abandoned streams leak nothing.

Disconnects
-----------
Connection teardown closes every live stream, cancels every in-flight
ticket (through the service's cooperative cancel hooks), and releases
every pin the client still held.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional, Set, Tuple

from repro.api import GraphDB, encode_apply_report, encode_batch_report
from repro.dynamic.delta import GraphDelta
from repro.exceptions import (
    ProtocolError,
    ReadOnlyReplicaError,
    ReplicationError,
    ServiceOverloadedError,
    StoreError,
    UnknownGraphError,
)
from repro.matching.result import Budget, jsonable
from repro.matching.stream import encode_page
from repro.obs import context as trace_context
from repro.obs import health as health_states
from repro.obs.events import EventLog
from repro.obs.log import configure as configure_logging, get_logger
from repro.query.parser import parse_query
from repro.query.pattern import PatternQuery
from repro.server.catalog import GraphCatalog
from repro.server.protocol import encode_error, error_code, encode_frame, read_frame
from repro.service.service import ServiceConfig, StreamingResult


def _decode_query(payload, name: Optional[str] = None) -> PatternQuery:
    """A request's query: either a :meth:`PatternQuery.to_dict` object or DSL text."""
    if isinstance(payload, str):
        return parse_query(payload, name=name or "query")
    if isinstance(payload, dict):
        return PatternQuery.from_dict(payload)
    raise ProtocolError(
        f"query must be DSL text or a query object, got {type(payload).__name__}"
    )


def _decode_budget(payload) -> Optional[Budget]:
    if payload is None:
        return None
    if not isinstance(payload, dict):
        raise ProtocolError(f"budget must be an object, got {type(payload).__name__}")
    return Budget.from_wire(payload)


class _ServerStream:
    """One streaming query being pumped to one connection, credit-gated."""

    def __init__(
        self,
        connection: "_Connection",
        stream_id: int,
        result: StreamingResult,
        window: int,
        page_timeout: Optional[float],
        database: Optional[GraphDB] = None,
    ) -> None:
        self.connection = connection
        self.stream_id = stream_id
        self.result = result
        self.database = database
        self._credits = threading.Semaphore(max(1, window))
        self._closed = threading.Event()
        self._page_timeout = page_timeout
        #: Accumulated page-encoding time, surfaced as the trace's
        #: ``wire_encode`` span on the end frame.
        self._encode_seconds = 0.0

    def grant(self, credits: int) -> None:
        """Replenish the send window (a client ``credit`` frame)."""
        for _ in range(max(0, int(credits))):
            self._credits.release()

    def close(self) -> None:
        """Stop pumping: cancel the producer and release the snapshot pin.

        Safe from the event loop: the blocking teardown
        (:meth:`StreamingResult.close`) only flips flags and drains a
        bounded queue; the pump thread observes the abandonment sentinel
        and exits without sending an end frame.
        """
        if self._closed.is_set():
            return
        self._closed.set()
        self._credits.release()  # wake a pump blocked on the window
        self.result.close()

    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    def _acquire_credit(self) -> bool:
        while not self._closed.is_set():
            if self._credits.acquire(timeout=0.05):
                if self._closed.is_set():
                    return False
                return True
        return False

    def pump(self) -> None:
        """Forward pages to the client (runs on an executor thread).

        Each page waits for one credit before it is sent; exhaustion sends
        the terminal frame carrying the finalised (count-only) report, and
        failures send the terminal frame carrying the mapped error.  Every
        exit path closes the result — the producer is cancelled and the
        pin released no matter how the stream ends.
        """
        error: Optional[BaseException] = None
        try:
            sequence = 0
            for page in self.result.pages(timeout=self._page_timeout):
                if not self._acquire_credit():
                    return
                encode_started = time.perf_counter()
                frame = {
                    "stream": self.stream_id,
                    "seq": sequence,
                    "page": encode_page(page),
                }
                self._encode_seconds += time.perf_counter() - encode_started
                sent = self.connection.send_from_thread(frame)
                self.connection.note_tenant_bytes(self.database, sent)
                sequence += 1
            if self._closed.is_set():
                return
            report = self.result.report(timeout=30.0)
            encode_started = time.perf_counter()
            wire = report.to_wire(include_occurrences=False)
            self._encode_seconds += time.perf_counter() - encode_started
            trace = self.result.ticket.trace
            if trace:
                # Extend the service-side span tree with the server's
                # encoding cost and re-finish: the root now covers the
                # whole stream drain including wire encoding.  The wall
                # time the pump spent forwarding pages — credit waits,
                # event-loop round trips — is accounted as ``stream_flush``
                # (the remainder over the already-attributed stages), so
                # the children keep summing to the root.
                trace.add_span("wire_encode", self._encode_seconds)
                trace.finish()
                flush = trace.seconds - trace.span_seconds()
                if flush > 0:
                    trace.add_span("stream_flush", flush)
                wire["extra"]["trace"] = trace.to_dict()
            sent = self.connection.send_from_thread(
                {"stream": self.stream_id, "end": True, "report": wire}
            )
            self.connection.note_tenant_bytes(self.database, sent)
        except Exception as exc:
            error = exc
        finally:
            self.result.close()
            self.connection.discard_stream(self.stream_id)
        if error is not None and not self._closed.is_set():
            trace = self.result.ticket.trace
            if trace and getattr(error, "trace_id", None) is None:
                try:
                    error.trace_id = trace.trace_id
                except Exception:  # pragma: no cover - exotic exception types
                    pass
            try:
                self.connection.send_from_thread(
                    {
                        "stream": self.stream_id,
                        "end": True,
                        "error": encode_error(error),
                    }
                )
            except Exception:  # connection already gone
                pass


#: Delta frames batched into one ``log_frames`` wire frame.
LOG_SHIP_BATCH = 64

#: Idle heartbeat period: an empty batch carrying the primary's head, so
#: a caught-up replica keeps its lag gauges current without traffic.
LOG_SHIP_HEARTBEAT_SECONDS = 1.0


class _LogShipper:
    """One replication subscription being pumped to one connection.

    Ships the catch-up entries computed at subscribe time, then tails the
    hub subscription's live queue, batching up to :data:`LOG_SHIP_BATCH`
    delta frames per wire frame::

        {"sub": s, "frames": [...], "head": primary-head-version}

    A subscription whose buffer overflowed (the replica fell too far
    behind) ends with ``{"sub": s, "end": true, "error": {...}}`` — the
    replica's cue to resubscribe from wherever it actually got to.  While
    idle the shipper heartbeats the current head about once a second.
    """

    def __init__(
        self,
        connection: "_Connection",
        ident: int,
        database: GraphDB,
        subscription,
        entries,
    ) -> None:
        self.connection = connection
        self.ident = ident
        self.database = database
        self.subscription = subscription
        self._entries = list(entries)
        self._stopped = threading.Event()

    def stop(self) -> None:
        """Stop pumping and drop the hub subscription (idempotent)."""
        self._stopped.set()
        self.subscription.close()

    def _send(self, frames) -> None:
        sent = self.connection.send_from_thread(
            {
                "sub": self.ident,
                "frames": frames,
                "head": int(self.database.head_version),
            }
        )
        self.connection.note_tenant_bytes(self.database, sent)

    def pump(self) -> None:
        """Forward catch-up + live delta frames (runs on its own thread)."""
        try:
            for start in range(0, len(self._entries), LOG_SHIP_BATCH):
                if self._stopped.is_set():
                    return
                self._send(self._entries[start : start + LOG_SHIP_BATCH])
            self._entries = []
            last_sent = time.monotonic()
            while not self._stopped.is_set():
                try:
                    frame = self.subscription.next(timeout=0.25)
                except ReplicationError as exc:
                    self.connection.send_from_thread(
                        {"sub": self.ident, "end": True, "error": encode_error(exc)}
                    )
                    return
                if frame is None:
                    if time.monotonic() - last_sent >= LOG_SHIP_HEARTBEAT_SECONDS:
                        self._send([])
                        last_sent = time.monotonic()
                    continue
                batch = [frame]
                lag_error = None
                while len(batch) < LOG_SHIP_BATCH:
                    try:
                        extra = self.subscription.next(timeout=0.0)
                    except ReplicationError as exc:
                        lag_error = exc
                        break
                    if extra is None:
                        break
                    batch.append(extra)
                self._send(batch)
                last_sent = time.monotonic()
                if lag_error is not None:
                    self.connection.send_from_thread(
                        {"sub": self.ident, "end": True, "error": encode_error(lag_error)}
                    )
                    return
        except Exception:
            pass  # connection gone (or shutting down); teardown cleans up
        finally:
            self.subscription.close()
            self.connection.discard_shipper(self.ident)


class _Connection:
    """One client connection: frame loop, dispatch, per-client resources."""

    def __init__(self, server: "GraphServer", reader, writer) -> None:
        self.server = server
        self._reader = reader
        self._writer = writer
        self._loop = asyncio.get_running_loop()
        self._send_lock = asyncio.Lock()
        self._tasks: Set[asyncio.Task] = set()
        self._streams: Dict[int, _ServerStream] = {}
        self._shippers: Dict[int, _LogShipper] = {}
        self._tickets: Set[object] = set()
        self._pins: Dict[str, Tuple[str, object]] = {}
        self._apply_futures: Dict[str, object] = {}
        self._pin_ids = itertools.count(1)
        self._closing = False

    # ------------------------------------------------------------------ #
    # frame loop
    # ------------------------------------------------------------------ #

    async def run(self) -> None:
        try:
            while True:
                try:
                    frame = await read_frame(self._reader)
                except ProtocolError as exc:
                    # Framing is broken: answer if the socket still works,
                    # then drop the connection (the stream position is lost).
                    await self._safe_send(
                        {"id": None, "ok": False, "error": encode_error(exc)}
                    )
                    break
                except (ConnectionError, OSError, asyncio.CancelledError):
                    break
                if frame is None:
                    break
                op = frame.get("op")
                if op == "credit":
                    stream = self._streams.get(frame.get("stream"))
                    if stream is not None:
                        stream.grant(frame.get("n", 1))
                    continue
                if op == "stream_cancel":
                    self.discard_stream(frame.get("stream"), close=True)
                    continue
                task = self._loop.create_task(self._dispatch(frame))
                self._tasks.add(task)
                task.add_done_callback(self._tasks.discard)
        finally:
            await self._teardown()

    async def _dispatch(self, frame: Dict[str, object]) -> None:
        ident = frame.get("id")
        try:
            if not isinstance(ident, int):
                raise ProtocolError(f"request carries no integer 'id': {frame!r}")
            handler = self._HANDLERS.get(frame.get("op"))
            if handler is None:
                raise ProtocolError(f"unknown op {frame.get('op')!r}")
            result = await handler(self, frame)
            sent = await self._safe_send({"id": ident, "ok": True, "result": result})
            self._note_bytes_for(frame, sent)
        except Exception as exc:
            # A traced request that fails still correlates: the client's
            # propagated trace id rides on the error payload (and on the
            # lifecycle WARNING below).
            trace_id = None
            context = trace_context.TraceContext.from_wire(frame.get("trace"))
            if context is not None:
                trace_id = context.trace_id
            if trace_id is not None and getattr(exc, "trace_id", None) is None:
                try:
                    exc.trace_id = trace_id
                except Exception:  # pragma: no cover - exotic exception types
                    pass
            kind = error_code(exc)
            self._note_error(frame, kind)
            if isinstance(exc, ServiceOverloadedError):
                self.server._log.warning(
                    "shed %s request for graph %r (trace_id=%s): %s",
                    frame.get("op"),
                    frame.get("graph"),
                    trace_id or "-",
                    exc,
                )
                self.server.events.emit(
                    "shed",
                    f"shed {frame.get('op')} for {frame.get('graph')!r}: {exc}",
                    op=frame.get("op"),
                    graph=frame.get("graph"),
                    trace_id=trace_id,
                )
            try:
                sent = await self._safe_send(
                    {
                        "id": ident if isinstance(ident, int) else None,
                        "ok": False,
                        "error": encode_error(exc),
                    }
                )
                self._note_bytes_for(frame, sent)
            except Exception:  # pragma: no cover - reply path is best-effort
                pass

    # ------------------------------------------------------------------ #
    # sending
    # ------------------------------------------------------------------ #

    async def _send(self, payload: Dict[str, object]) -> int:
        if self._closing:
            raise ConnectionError("connection is closing")
        data = encode_frame(payload)
        async with self._send_lock:
            self._writer.write(data)
            await self._writer.drain()
        return len(data)

    async def _safe_send(self, payload: Dict[str, object]) -> int:
        try:
            return await self._send(payload)
        except (ConnectionError, RuntimeError, OSError):
            return 0  # client went away mid-reply; teardown will follow

    def send_from_thread(self, payload: Dict[str, object], timeout: float = 30.0) -> int:
        """Send one frame from a pump thread (raises once the connection dies).

        Returns the encoded frame size so callers can account per-tenant
        egress.
        """
        future = asyncio.run_coroutine_threadsafe(self._send(payload), self._loop)
        return future.result(timeout)

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #

    async def _run(self, fn, *args):
        """Run a blocking call on the server executor."""
        return await self._loop.run_in_executor(self.server._executor, fn, *args)

    def _db(self, frame: Dict[str, object]) -> Tuple[str, GraphDB]:
        name = frame.get("graph")
        if not isinstance(name, str) or not name:
            raise ProtocolError("request names no graph (missing 'graph' field)")
        database = self.server.catalog.get(name)
        telemetry = getattr(database, "telemetry", None)
        if telemetry is not None:
            telemetry.registry.counter(
                "server_requests_total",
                "Wire requests handled for this tenant, by op",
                labelnames=("op",),
            ).labels(str(frame.get("op"))).inc()
        return name, database

    def _note_error(self, frame: Dict[str, object], kind: str) -> None:
        """Count one failed request in ``server_errors_total{op,kind}``.

        Best-effort: errors raised before (or because) the tenant lookup
        failed still count when the frame names a live tenant; frames
        naming none (or a dropped one) have no registry to land in.
        """
        name = frame.get("graph")
        if not isinstance(name, str) or not name:
            return
        try:
            database = self.server.catalog.get(name)
        except Exception:
            return
        telemetry = getattr(database, "telemetry", None)
        if telemetry is None:
            return
        telemetry.registry.counter(
            "server_errors_total",
            "Wire requests that answered with an error, by op and error kind",
            labelnames=("op", "kind"),
        ).labels(str(frame.get("op")), str(kind)).inc()

    def _trace_scope(self, frame: Dict[str, object], database: GraphDB):
        """Decode the frame's trace context and find the tenant's span ring."""
        context = trace_context.TraceContext.from_wire(frame.get("trace"))
        if context is None:
            return None, None
        telemetry = getattr(database, "telemetry", None)
        recorder = telemetry.spans if telemetry is not None else None
        return context, recorder

    def note_tenant_bytes(self, database: Optional[GraphDB], nbytes: int) -> None:
        """Account response/stream egress against the tenant's registry."""
        if not nbytes or database is None:
            return
        telemetry = getattr(database, "telemetry", None)
        if telemetry is None:
            return
        telemetry.registry.counter(
            "server_bytes_sent_total",
            "Bytes of response and stream frames sent for this tenant",
        ).inc(nbytes)

    def _note_bytes_for(self, frame: Dict[str, object], nbytes: int) -> None:
        """Attribute one reply's bytes to the tenant the request named."""
        if not nbytes:
            return
        name = frame.get("graph")
        if not isinstance(name, str) or not name:
            return
        try:
            database = self.server.catalog.get(name)
        except Exception:
            return  # tenant dropped between handling and accounting
        self.note_tenant_bytes(database, nbytes)

    def _pin_for(self, frame: Dict[str, object], graph_name: str):
        token = frame.get("pin")
        if token is None:
            return None
        entry = self._pins.get(token)
        if entry is None:
            raise StoreError(f"unknown pin token {token!r}")
        pinned_graph, snapshot = entry
        if pinned_graph != graph_name:
            raise StoreError(
                f"pin {token!r} belongs to graph {pinned_graph!r}, not {graph_name!r}"
            )
        return snapshot

    def discard_stream(self, stream_id, close: bool = False) -> None:
        """Forget (and optionally close) one stream; thread-safe enough.

        Called from pump threads on normal exhaustion and from the event
        loop on cancel frames / teardown.
        """
        stream = self._streams.pop(stream_id, None)
        if stream is not None and close:
            stream.close()

    def discard_shipper(self, ident) -> None:
        """Forget (and stop) one log shipper; thread-safe enough."""
        shipper = self._shippers.pop(ident, None)
        if shipper is not None:
            shipper.stop()

    def _track_ticket(self, ticket) -> None:
        self._tickets.add(ticket)
        ticket.add_done_callback(self._tickets.discard)

    @staticmethod
    def _require_writable(name: str, database: GraphDB) -> None:
        if getattr(database, "read_only", False):
            raise ReadOnlyReplicaError(
                f"graph {name!r} is a read-only replica — "
                "writes must go to the primary"
            )

    def _info(self, name: str, database: GraphDB) -> Dict[str, object]:
        graph = database.graph
        return {
            "name": name,
            "head_version": database.head_version,
            "num_nodes": graph.num_nodes,
            "num_edges": graph.num_edges,
        }

    # ------------------------------------------------------------------ #
    # op handlers
    # ------------------------------------------------------------------ #

    async def _op_ping(self, frame):
        return {"pong": True, "graphs": len(self.server.catalog)}

    async def _op_graphs(self, frame):
        catalog = self.server.catalog
        infos = []
        for name in catalog.names():
            try:
                infos.append(self._info(name, catalog.get(name)))
            except UnknownGraphError:
                continue  # dropped by a concurrent client between list and get
        return {"graphs": infos}

    async def _op_create_graph(self, frame):
        name = frame.get("name")
        labels = frame.get("labels") or ()
        edges = [tuple(edge) for edge in frame.get("edges") or ()]

        def build():
            return self.server.catalog.create(
                name,
                labels=labels,
                edges=edges,
                exist_ok=bool(frame.get("exist_ok", False)),
            )

        database = await self._run(build)
        self.server._log.info(
            "created graph %r (%d node(s))", name, database.num_nodes
        )
        self.server.events.emit(
            "create_graph", f"created graph {name!r}", graph=name
        )
        return self._info(name, database)

    async def _op_drop_graph(self, frame):
        name = frame.get("name")

        def drop():
            self.server.catalog.drop(
                name,
                force=bool(frame.get("force", False)),
                delete_storage=bool(frame.get("delete_storage", False)),
            )

        await self._run(drop)
        self.server._log.info("dropped graph %r", name)
        self.server.events.emit("drop_graph", f"dropped graph {name!r}", graph=name)
        return {"dropped": name}

    async def _op_checkpoint(self, frame):
        name, database = self._db(frame)
        self._require_writable(name, database)
        return await self._run(database.checkpoint)

    async def _op_info(self, frame):
        name, database = self._db(frame)
        return self._info(name, database)

    async def _op_ingest(self, frame):
        name, database = self._db(frame)
        self._require_writable(name, database)
        context, recorder = self._trace_scope(frame, database)

        def run():
            # The context activates on the executor thread that performs
            # the fold, so the store's fold/journal/publish spans — and the
            # replication frames the publish listeners ship — all hang
            # under this server-side op span.
            with trace_context.activate(
                context, recorder=recorder, node=self.server.node
            ):
                with trace_context.trace_span("ingest", graph=name):
                    return database.ingest(
                        labels=frame.get("labels") or (),
                        edges=[tuple(edge) for edge in frame.get("edges") or ()],
                        remove_edges=[
                            tuple(edge) for edge in frame.get("remove_edges") or ()
                        ],
                    )

        return encode_apply_report(await self._run(run))

    async def _op_apply(self, frame):
        name, database = self._db(frame)
        self._require_writable(name, database)
        delta = GraphDelta.from_dict(frame.get("delta") or {})
        context, recorder = self._trace_scope(frame, database)

        def run():
            with trace_context.activate(
                context, recorder=recorder, node=self.server.node
            ):
                with trace_context.trace_span("apply", graph=name):
                    return database.apply(delta)

        report = await self._run(run)
        return encode_apply_report(report)

    async def _op_apply_async(self, frame):
        name, database = self._db(frame)
        self._require_writable(name, database)
        delta = GraphDelta.from_dict(frame.get("delta") or {})
        future = database.apply_async(delta)
        token = f"a{next(self._pin_ids)}"
        self._apply_futures[token] = future
        return {"token": token}

    async def _op_apply_wait(self, frame):
        token = frame.get("token")
        future = self._apply_futures.get(token)
        if future is None:
            raise StoreError(f"unknown apply token {token!r}")
        report = await self._run(future.result, frame.get("timeout"))
        self._apply_futures.pop(token, None)
        return encode_apply_report(report)

    async def _op_query(self, frame):
        name, database = self._db(frame)
        query = _decode_query(frame.get("query"), frame.get("name"))
        snapshot = self._pin_for(frame, name)
        context, recorder = self._trace_scope(frame, database)
        # A propagated read context also lands one op span in the tenant's
        # cross-node ring, so routed reads show up on whichever node
        # served them when the trace is assembled fleet-wide.
        span = None
        if context is not None and context.sampled and recorder is not None:
            span = trace_context.Span(
                "query",
                context.trace_id,
                parent_id=context.span_id,
                node=self.server.node,
                graph=name,
            )
        ticket = database.service.submit(
            query,
            engine=frame.get("engine"),
            budget=_decode_budget(frame.get("budget")),
            deadline_seconds=frame.get("deadline_seconds"),
            snapshot=snapshot,
            name=frame.get("name"),
            trace_id=context.trace_id if context is not None else None,
        )
        self._track_ticket(ticket)
        try:
            report = await self._run(ticket.result, frame.get("timeout"))
        finally:
            if span is not None:
                recorder.record(span.finish())
        encode_started = time.perf_counter()
        wire = report.to_wire()
        trace = ticket.trace
        if trace:
            # The service already finished the root over queue/pin/run;
            # append the server's encoding cost and re-finish so the tree
            # the client sees covers the full server-side wall clock.
            trace.add_span("wire_encode", time.perf_counter() - encode_started)
            trace.finish()
            wire["extra"]["trace"] = trace.to_dict()
        return wire

    async def _op_count(self, frame):
        name, database = self._db(frame)
        query = _decode_query(frame.get("query"), frame.get("name"))
        budget = _decode_budget(frame.get("budget"))
        engine = frame.get("engine") or "GM"
        snapshot = self._pin_for(frame, name)

        def run():
            if snapshot is not None:
                return snapshot.count(query, engine=engine, budget=budget)
            with database.store.pin() as snap:
                return snap.count(query, engine=engine, budget=budget)

        return {"count": await self._run(run)}

    async def _op_explain(self, frame):
        name, database = self._db(frame)
        query = _decode_query(frame.get("query"), frame.get("name"))
        budget = _decode_budget(frame.get("budget"))
        engine = frame.get("engine") or "GM"
        analyze = bool(frame.get("analyze", False))
        snapshot = self._pin_for(frame, name)

        def run():
            if snapshot is not None:
                return snapshot.explain(
                    query, engine=engine, analyze=analyze, budget=budget
                )
            with database.store.pin() as snap:
                return snap.explain(query, engine=engine, analyze=analyze, budget=budget)

        plan = await self._run(run)
        return {"plan": plan.to_wire()}

    async def _op_histogram(self, frame):
        name, database = self._db(frame)
        query = _decode_query(frame.get("query"), frame.get("name"))
        budget = _decode_budget(frame.get("budget"))
        engine = frame.get("engine") or "GM"
        node = frame.get("node")
        snapshot = self._pin_for(frame, name)

        def run():
            if snapshot is not None:
                return snapshot.histogram(query, node=node, engine=engine, budget=budget)
            with database.store.pin() as snap:
                return snap.histogram(query, node=node, engine=engine, budget=budget)

        return {"histogram": await self._run(run)}

    async def _op_run_batch(self, frame):
        name, database = self._db(frame)
        raw_queries = frame.get("queries")
        if not isinstance(raw_queries, list):
            raise ProtocolError("run_batch needs a 'queries' list")
        queries = {}
        for index, entry in enumerate(raw_queries):
            if not isinstance(entry, dict):
                raise ProtocolError(f"batch entry {index} is not an object")
            query = _decode_query(entry.get("query"), entry.get("name"))
            queries[entry.get("name") or query.name or f"q{index}"] = query
        budget = _decode_budget(frame.get("budget"))
        snapshot = self._pin_for(frame, name)

        def run():
            return database.service.run_batch(
                queries,
                engine=frame.get("engine"),
                budget=budget,
                workers=frame.get("workers"),
                keep_occurrences=bool(frame.get("keep_occurrences", True)),
                snapshot=snapshot,
            )

        return encode_batch_report(await self._run(run))

    async def _op_pin(self, frame):
        name, database = self._db(frame)
        snapshot = database.store.pin(frame.get("version"))
        token = f"p{next(self._pin_ids)}"
        self._pins[token] = (name, snapshot)
        return {"pin": token, "version": snapshot.version}

    async def _op_release(self, frame):
        token = frame.get("pin")
        entry = self._pins.pop(token, None)
        if entry is None:
            raise StoreError(f"unknown pin token {token!r}")
        entry[1].release()
        return {"released": token}

    async def _op_stats(self, frame):
        _, database = self._db(frame)
        stats = await self._run(database.stats)
        return {key: jsonable(value) for key, value in stats.items()}

    async def _op_save(self, frame):
        _, database = self._db(frame)
        path = frame.get("path")
        if not isinstance(path, str) or not path:
            raise ProtocolError("save needs a 'path' string")
        return {"path": await self._run(database.save, path)}

    async def _op_metrics(self, frame):
        _, database = self._db(frame)
        format = frame.get("format") or "json"

        def run():
            return database.metrics(format=format)

        payload = await self._run(run)
        if format == "prometheus":
            return {"format": "prometheus", "text": payload}
        return {"format": "json", "metrics": payload}

    async def _op_slow_queries(self, frame):
        _, database = self._db(frame)
        limit = frame.get("limit")
        entries = await self._run(database.slow_queries, limit)
        return {"slow_queries": [jsonable(entry) for entry in entries]}

    async def _op_stream_open(self, frame):
        name, database = self._db(frame)
        query = _decode_query(frame.get("query"), frame.get("name"))
        budget = _decode_budget(frame.get("budget"))
        page_size = int(frame.get("page_size", 256))
        window = int(frame.get("window") or self.server.stream_window)
        pinned = self._pin_for(frame, name)
        ident = frame["id"]
        context, _ = self._trace_scope(frame, database)
        stream_trace_id = context.trace_id if context is not None else None
        telemetry = getattr(database, "telemetry", None)
        if telemetry is not None:
            telemetry.registry.counter(
                "server_streams_opened_total",
                "Streaming queries opened for this tenant",
            ).inc()

        def open_stream() -> StreamingResult:
            # Pages never accumulate server-side (keep_occurrences=False):
            # the stream's memory bound is the service's page buffer plus
            # this connection's credit window.
            if pinned is not None:
                snapshot = database.store.pin(pinned.version)
                try:
                    ticket = database.service.submit(
                        query,
                        engine=frame.get("engine"),
                        budget=budget,
                        deadline_seconds=frame.get("deadline_seconds"),
                        snapshot=snapshot,
                        page_size=page_size,
                        keep_occurrences=False,
                        trace_id=stream_trace_id,
                    )
                except Exception:
                    snapshot.release()
                    raise
                return StreamingResult(ticket, snapshot, page_size)
            return database.service.stream(
                query,
                engine=frame.get("engine"),
                budget=budget,
                page_size=page_size,
                deadline_seconds=frame.get("deadline_seconds"),
                keep_occurrences=False,
                trace_id=stream_trace_id,
            )

        result = await self._run(open_stream)
        stream = _ServerStream(
            self,
            ident,
            result,
            window,
            self.server.stream_page_timeout,
            database=database,
        )
        self._streams[ident] = stream
        self._track_ticket(result.ticket)
        # The reply goes out before the pump starts, so the client always
        # sees the stream id before its first page frame.
        reply = {
            "stream": ident,
            "version": result.version,
            "window": window,
            "page_size": page_size,
        }
        self._loop.run_in_executor(self.server._executor, stream.pump)
        return reply

    async def _op_subscribe_log(self, frame):
        name, database = self._db(frame)
        # Lazy import: repro.replication imports the api/server layers,
        # so the hub cannot be a module-level dependency of the server.
        from repro.replication.hub import get_hub

        from_version = frame.get("from_version")
        if from_version is not None:
            from_version = int(from_version)

        def subscribe():
            return get_hub(database).subscribe(from_version=from_version)

        subscription, catchup = await self._run(subscribe)
        ident = frame["id"]
        shipper = _LogShipper(
            self, ident, database, subscription, catchup["entries"]
        )
        self._shippers[ident] = shipper
        snapshot = catchup["snapshot"]
        reply = {
            "subscription": ident,
            "graph": name,
            "mode": catchup["mode"],
            "snapshot": snapshot,
            "snapshot_version": int(snapshot["version"]) if snapshot else None,
            "head_version": catchup["head_version"],
        }
        # Long-lived pump: a dedicated thread, not an executor slot — a
        # fleet of replicas must not starve the query pool.
        threading.Thread(
            target=shipper.pump, name=f"log-shipper-{ident}", daemon=True
        ).start()
        return reply

    async def _op_replica_status(self, frame):
        name, database = self._db(frame)
        status = {
            "graph": name,
            "replica": False,
            "read_only": bool(getattr(database, "read_only", False)),
            "head_version": int(database.head_version),
        }
        reporter = getattr(database, "replication_status", None)
        if reporter is not None:
            status.update(await self._run(reporter))
            status["replica"] = True
        return status

    async def _op_health(self, frame):
        """Cheap, graph-less readiness probe: role, uptime, per-tenant state.

        Routers poll this with short timeouts instead of per-graph
        ``info`` probes — one frame answers for every tenant, and a node
        that cannot answer it *at all* (frozen, partitioned) is the
        router's cue to mark it unreachable.
        """

        def collect():
            server = self.server
            tenants: Dict[str, object] = {}
            states = []
            for name in server.catalog.names():
                try:
                    database = server.catalog.get(name)
                except UnknownGraphError:
                    continue  # dropped between list and get
                entry: Dict[str, object] = {
                    "head_version": int(database.head_version),
                    "read_only": bool(getattr(database, "read_only", False)),
                }
                durability = getattr(database, "durability", None)
                if durability is not None:
                    counters = durability.counters()
                    entry["wal"] = {
                        "entries_since_checkpoint": counters.get(
                            "entries_since_checkpoint"
                        ),
                        "last_checkpoint_version": counters.get(
                            "last_checkpoint_version"
                        ),
                    }
                hub = getattr(database, "replication_hub", None)
                if hub is not None and not hub._closed:
                    entry["subscribers"] = hub.subscriber_count()
                tail_status = None
                reporter = getattr(database, "replication_status", None)
                if reporter is not None:
                    tail_status = reporter()
                    entry["replication"] = {
                        "connected": tail_status.get("connected"),
                        "lag_versions": tail_status.get("lag_versions"),
                        "lag_seconds": tail_status.get("lag_seconds"),
                    }
                state = health_states.classify_tenant(
                    server.role,
                    tail_status,
                    degraded_lag_versions=server.degraded_lag_versions,
                    unhealthy_lag_versions=server.unhealthy_lag_versions,
                )
                entry["status"] = state
                states.append(state)
                tenants[name] = entry
            return {
                "status": health_states.worst(states),
                "node": server.node,
                "role": server.role,
                "uptime_seconds": max(0.0, time.time() - server.started_at),
                "tenants": tenants,
            }

        return await self._run(collect)

    async def _op_events(self, frame):
        """Recent server lifecycle events from the bounded ring, oldest first."""
        limit = frame.get("limit")
        kinds = frame.get("kinds")
        after_seq = frame.get("after_seq")
        events = self.server.events.recent(
            limit=int(limit) if limit is not None else None,
            kinds=kinds,
            after_seq=int(after_seq) if after_seq is not None else None,
        )
        return {"events": events, "last_seq": self.server.events.last_seq}

    async def _op_spans(self, frame):
        """Finished distributed-trace spans from one tenant's span ring."""
        _, database = self._db(frame)
        telemetry = getattr(database, "telemetry", None)
        recorder = telemetry.spans if telemetry is not None else None
        if recorder is None:
            return {"spans": []}
        trace_id = frame.get("trace_id")
        if trace_id is not None:
            spans = recorder.for_trace(str(trace_id))
        else:
            limit = frame.get("limit")
            spans = recorder.recent(int(limit) if limit is not None else None)
        return {"spans": [dict(span) for span in spans]}

    _HANDLERS = {
        "ping": _op_ping,
        "graphs": _op_graphs,
        "create_graph": _op_create_graph,
        "drop_graph": _op_drop_graph,
        "info": _op_info,
        "ingest": _op_ingest,
        "apply": _op_apply,
        "apply_async": _op_apply_async,
        "apply_wait": _op_apply_wait,
        "query": _op_query,
        "count": _op_count,
        "explain": _op_explain,
        "histogram": _op_histogram,
        "run_batch": _op_run_batch,
        "pin": _op_pin,
        "release": _op_release,
        "stats": _op_stats,
        "metrics": _op_metrics,
        "slow_queries": _op_slow_queries,
        "checkpoint": _op_checkpoint,
        "save": _op_save,
        "stream_open": _op_stream_open,
        "subscribe_log": _op_subscribe_log,
        "replica_status": _op_replica_status,
        "health": _op_health,
        "events": _op_events,
        "spans": _op_spans,
    }

    # ------------------------------------------------------------------ #
    # teardown
    # ------------------------------------------------------------------ #

    async def _teardown(self) -> None:
        """Release everything this client owned (streams, tickets, pins)."""
        self._closing = True
        for stream in list(self._streams.values()):
            stream.close()
        self._streams.clear()
        for shipper in list(self._shippers.values()):
            shipper.stop()
        self._shippers.clear()
        for ticket in list(self._tickets):
            ticket.cancel()
        for _, snapshot in self._pins.values():
            snapshot.release()
        self._pins.clear()
        self._apply_futures.clear()
        if self._tasks:
            await asyncio.wait(list(self._tasks), timeout=10.0)
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    def abort(self) -> None:
        """Hard-close the transport (server shutdown); loop thread only."""
        transport = self._writer.transport
        if transport is not None:
            transport.abort()


class GraphServer:
    """A TCP server exposing a :class:`GraphCatalog` over the wire protocol.

    Parameters
    ----------
    catalog:
        The tenant registry to serve.  ``None`` creates an owned catalog —
        empty, or recovered from ``data_dir`` when that is given; a
        caller-supplied catalog keeps its owner (it is *not* closed with
        the server), which is how an existing in-process :class:`GraphDB`
        is put on the network: ``catalog.attach("main", db)``.
    data_dir:
        Durable storage root (only with ``catalog=None``).  The server
        opens :meth:`GraphCatalog.open` over it: tenants present on disk
        are recovered to their exact pre-crash head versions before the
        socket binds, and tenants created over the wire journal every
        fold ahead of publish, so a killed-and-restarted server loses
        nothing that was acknowledged.  ``checkpoint_every`` sets the
        tenants' auto-checkpoint policy.
    host / port:
        Bind address; port 0 picks a free port (read it from
        :attr:`address` after :meth:`start`).
    stream_window:
        Default credit window per stream: how many pages the server pumps
        ahead of the client's grants (clients may ask for their own window
        at ``stream_open``).
    stream_page_timeout:
        Upper bound on the pump's wait for one page from the executing
        worker (``None`` — the default — trusts budgets/deadlines to
        terminate the query).
    service_config:
        Default :class:`ServiceConfig` for catalogs the server creates.
    log_level:
        When given (``"INFO"``, ``logging.DEBUG``, ...), attaches the
        library's managed log handler (see :func:`repro.obs.get_logger`)
        so connection, tenant-lifecycle, recovery and shed events are
        emitted; ``None`` (default) leaves handler configuration to the
        embedding application.

    The server runs its event loop on a dedicated daemon thread:
    :meth:`start` returns once the socket is bound, :meth:`close` stops
    accepting, aborts live connections (running their resource teardown)
    and joins the thread.  Usable as a context manager.
    """

    def __init__(
        self,
        catalog: Optional[GraphCatalog] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        stream_window: int = 4,
        stream_page_timeout: Optional[float] = None,
        service_config: Optional[ServiceConfig] = None,
        data_dir: Optional[str] = None,
        checkpoint_every: Optional[int] = None,
        log_level=None,
        node: Optional[str] = None,
        role: str = "primary",
        event_capacity: int = 256,
        degraded_lag_versions: int = health_states.DEFAULT_DEGRADED_LAG_VERSIONS,
        unhealthy_lag_versions: int = health_states.DEFAULT_UNHEALTHY_LAG_VERSIONS,
    ) -> None:
        # ``log_level`` ("INFO", logging.DEBUG, ...) attaches the library's
        # managed stream handler; None leaves logging to the application.
        if log_level is not None:
            configure_logging(log_level)
        self._log = get_logger("server")
        # Node identity: stamped on every distributed-trace span this
        # server records and reported by the ``health`` op.  ``None``
        # resolves to ``role@host:port`` once the socket binds.
        self.node = node
        self.role = role
        self.events = EventLog(event_capacity)
        self.started_at = time.time()
        self.degraded_lag_versions = degraded_lag_versions
        self.unhealthy_lag_versions = unhealthy_lag_versions
        if catalog is not None:
            if data_dir is not None:
                raise StoreError(
                    "pass data_dir only with catalog=None — a supplied catalog "
                    "carries its own durability configuration"
                )
            self.catalog = catalog
        elif data_dir is not None:
            self.catalog = GraphCatalog.open(
                data_dir, config=service_config, checkpoint_every=checkpoint_every
            )
            for name in self.catalog.names():
                recovery = getattr(self.catalog.get(name), "last_recovery", None)
                if recovery is not None:
                    self._log.info(
                        "recovered tenant %r to version %s",
                        name,
                        getattr(recovery, "head_version", "?"),
                    )
                    self.events.emit(
                        "recovery",
                        f"recovered tenant {name!r}",
                        graph=name,
                        head_version=getattr(recovery, "head_version", None),
                    )
        else:
            self.catalog = GraphCatalog(config=service_config)
        self._owns_catalog = catalog is None
        self._host = host
        self._port = port
        self.stream_window = max(1, stream_window)
        self.stream_page_timeout = stream_page_timeout
        self.address: Optional[Tuple[str, int]] = None
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._connections: Set[_Connection] = set()
        self._connection_tasks: Set[asyncio.Task] = set()
        self._executor: Optional[ThreadPoolExecutor] = None
        self._closed = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> Tuple[str, int]:
        """Bind and serve on a background thread; returns ``(host, port)``."""
        if self._thread is not None:
            raise StoreError("server was already started")
        self._thread = threading.Thread(
            target=self._run_loop, name="graph-server", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30.0):  # pragma: no cover - defensive
            raise StoreError("server failed to start within 30s")
        if self._startup_error is not None:
            raise self._startup_error
        return self.address

    def _run_loop(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=64, thread_name_prefix="graph-server-io"
        )
        try:
            server = await asyncio.start_server(self._on_client, self._host, self._port)
        except Exception as exc:
            self._startup_error = exc
            self._executor.shutdown(wait=False)
            self._started.set()
            return
        bound = server.sockets[0].getsockname()
        self.address = (bound[0], bound[1])
        if self.node is None:
            self.node = f"{self.role}@{bound[0]}:{bound[1]}"
        self.started_at = time.time()
        self._log.info(
            "listening on %s:%s (%d tenant(s))", bound[0], bound[1], len(self.catalog)
        )
        self.events.emit(
            "listening",
            f"{self.node} listening on {bound[0]}:{bound[1]}",
            node=self.node,
            role=self.role,
            tenants=len(self.catalog),
        )
        self._started.set()
        async with server:
            await self._stop_event.wait()
        for connection in list(self._connections):
            connection.abort()
        if self._connection_tasks:
            await asyncio.wait(list(self._connection_tasks), timeout=10.0)
        self._executor.shutdown(wait=True)

    async def _on_client(self, reader, writer) -> None:
        connection = _Connection(self, reader, writer)
        peer = writer.get_extra_info("peername")
        self._log.info("client connected from %s", peer)
        self.events.emit("client_connect", f"client connected from {peer}")
        self._connections.add(connection)
        task = asyncio.current_task()
        if task is not None:
            self._connection_tasks.add(task)
            task.add_done_callback(self._connection_tasks.discard)
        try:
            await connection.run()
        finally:
            self._connections.discard(connection)
            self._log.info("client %s disconnected", peer)
            self.events.emit("client_disconnect", f"client {peer} disconnected")

    def close(self) -> None:
        """Stop serving; tears down live connections and joins the loop thread."""
        if self._closed:
            return
        self._closed = True
        if self._thread is not None and self._loop is not None:
            if not self._started.is_set():  # pragma: no cover - defensive
                self._started.wait(timeout=5.0)
            try:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:  # loop already gone
                pass
            self._thread.join(timeout=30.0)
        if self._owns_catalog:
            self.catalog.close()
        self.events.emit("stopped", f"{self.node or 'server'} stopped")
        self._log.info("server stopped")

    def __enter__(self) -> "GraphServer":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else ("serving" if self.address else "new")
        return f"GraphServer(address={self.address}, graphs={len(self.catalog)}, {state})"
