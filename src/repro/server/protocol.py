"""The wire protocol: length-prefixed JSON frames + error mapping.

Framing
-------
Every message — request, response, stream page, credit grant — is one
*frame*::

    +----------------+----------------------------------+
    | 4 bytes (>I)   | UTF-8 JSON object (length bytes) |
    +----------------+----------------------------------+

The body must decode to a JSON **object**.  Three frame shapes flow:

* requests ``{"id": n, "op": "query", ...}`` (client -> server);
* responses ``{"id": n, "ok": true, "result": ...}`` or
  ``{"id": n, "ok": false, "error": {...}}`` (server -> client);
* stream frames ``{"stream": s, "seq": k, "page": [...]}`` and the
  terminal ``{"stream": s, "end": true, "report"|"error": ...}``
  (server -> client, interleaved with responses — the ``stream`` key is
  what lets a client demultiplex them).

Truncated, oversized or non-JSON frames raise
:class:`~repro.exceptions.ProtocolError`; the connection is not
recoverable past one (the stream position is lost), so both endpoints
close on it.

Error mapping
-------------
:func:`encode_error` flattens the library's exception hierarchy into a
typed payload; :func:`decode_error` rebuilds the *same* exception class
client-side, so remote callers keep their ``except`` clauses: a shed
request raises :class:`~repro.exceptions.ServiceOverloadedError` with its
``reason`` (``queue_full`` / ``deadline``) intact, a stale injected index
raises :class:`~repro.exceptions.StaleIndexError` naming both versions,
an unknown tenant raises :class:`~repro.exceptions.UnknownGraphError`.
(Cancellation is *not* an error: a cancelled query answers with a normal
report whose status is ``cancelled``, on the wire as in-process.)
"""

from __future__ import annotations

import socket
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Dict, Optional

from repro.framing import (
    HEADER_BYTES,
    MAX_FRAME_BYTES,
    check_length,
    decode_body,
    decode_length,
    encode_frame,
)
from repro.exceptions import (
    CatalogError,
    EngineError,
    GraphError,
    PrimaryUnavailableError,
    ProtocolError,
    QueryCancelled,
    QueryError,
    QueryParseError,
    ReadOnlyReplicaError,
    ReplicaDivergedError,
    ReplicationError,
    ReproError,
    ServiceOverloadedError,
    StaleIndexError,
    StoreError,
    UnknownGraphError,
    WalError,
)

# ---------------------------------------------------------------------- #
# framing
# ---------------------------------------------------------------------- #

# The codec itself lives in :mod:`repro.framing` (shared with the
# write-ahead log, which journals one frame per delta in this exact
# format); this module re-exports it and adds the socket readers.
__all__ = [
    "HEADER_BYTES",
    "MAX_FRAME_BYTES",
    "check_length",
    "decode_body",
    "decode_error",
    "decode_length",
    "encode_error",
    "encode_frame",
    "error_code",
    "read_frame",
    "read_frame_sync",
]


def read_frame_sync(sock: socket.socket) -> Optional[Dict[str, object]]:
    """Blocking frame read from a plain socket (the sync client's reader).

    Returns ``None`` on a clean EOF at a frame boundary; raises
    :class:`~repro.exceptions.ProtocolError` on a mid-frame EOF
    (truncation) or a malformed body.  ``socket.timeout`` propagates so
    callers can poll.
    """
    header = _recv_exactly(sock, HEADER_BYTES, allow_eof=True)
    if header is None:
        return None
    body = _recv_exactly(sock, decode_length(header), allow_eof=False)
    return decode_body(body)


def _recv_exactly(sock: socket.socket, count: int, allow_eof: bool) -> Optional[bytes]:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if allow_eof and remaining == count:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({count - remaining} of {count} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


async def read_frame(reader) -> Optional[Dict[str, object]]:
    """Async frame read from an :class:`asyncio.StreamReader` (the server side).

    Same contract as :func:`read_frame_sync`: ``None`` on clean EOF,
    :class:`~repro.exceptions.ProtocolError` on truncation or malformed
    bodies.
    """
    import asyncio

    try:
        header = await reader.readexactly(HEADER_BYTES)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError(
            f"connection closed mid-header ({len(exc.partial)} of {HEADER_BYTES} bytes)"
        ) from exc
    length = decode_length(header)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"connection closed mid-frame ({len(exc.partial)} of {length} bytes)"
        ) from exc
    return decode_body(body)


# ---------------------------------------------------------------------- #
# error mapping
# ---------------------------------------------------------------------- #

#: Errors that rebuild from a message alone, most-derived class first (so
#: e.g. a QueryParseError encodes to its own code, not its QueryError base).
#: One table drives both directions: :func:`encode_error` scans it in
#: order, :func:`decode_error` looks the code up in the derived dict.
_CODED_CLASSES = (
    ("query_parse", QueryParseError),
    ("query", QueryError),
    ("graph", GraphError),
    ("catalog", CatalogError),
    ("wal", WalError),
    ("read_only_replica", ReadOnlyReplicaError),
    ("primary_unavailable", PrimaryUnavailableError),
    ("replication", ReplicationError),
    ("store", StoreError),
    ("engine", EngineError),
    ("protocol", ProtocolError),
)

_SIMPLE_CODES = {code: klass for code, klass in _CODED_CLASSES}

def encode_error(exc: BaseException) -> Dict[str, object]:
    """Flatten ``exc`` into the typed error payload of an error response.

    A ``trace_id`` attribute stuck onto any exception by the dispatch
    layer rides along, so a traced request that *fails* still correlates
    with its client-side trace.
    """
    payload = _encode_error_payload(exc)
    trace_id = getattr(exc, "trace_id", None)
    if trace_id is not None:
        payload["trace_id"] = trace_id
    return payload


def _encode_error_payload(exc: BaseException) -> Dict[str, object]:
    if isinstance(exc, ServiceOverloadedError):
        payload: Dict[str, object] = {
            "code": "overloaded",
            "reason": exc.reason,
            "detail": exc.detail,
        }
        # Rejection-time load context (PR 7): absent on errors raised by
        # paths that never captured it, and omitted from the wire then —
        # the decoder restores them as None either way.
        if exc.queue_depth is not None:
            payload["queue_depth"] = exc.queue_depth
        if exc.workers_busy is not None:
            payload["workers_busy"] = exc.workers_busy
        if exc.workers_total is not None:
            payload["workers_total"] = exc.workers_total
        return payload
    if isinstance(exc, StaleIndexError):
        return {
            "code": "stale_index",
            "engine": exc.engine,
            "artifact": exc.artifact,
            "expected_version": exc.expected_version,
            "found_version": exc.found_version,
        }
    if isinstance(exc, UnknownGraphError):
        return {"code": "unknown_graph", "name": exc.name, "message": str(exc)}
    if isinstance(exc, ReplicaDivergedError):
        return {
            "code": "replica_diverged",
            "expected_version": exc.expected_version,
            "found_version": exc.found_version,
        }
    if isinstance(exc, QueryCancelled):
        return {"code": "cancelled", "message": str(exc)}
    if isinstance(exc, (TimeoutError, FutureTimeoutError)):
        # FutureTimeoutError is a distinct class before Python 3.11; both
        # shapes (ticket waits, writer-future waits) map to one code.
        return {"code": "timeout", "message": str(exc)}
    for code, klass in _CODED_CLASSES:
        if isinstance(exc, klass):
            return {"code": code, "message": str(exc)}
    return {"code": "internal", "type": type(exc).__name__, "message": str(exc)}


def error_code(exc: BaseException) -> str:
    """The wire code ``exc`` encodes to — the ``kind`` label of
    ``server_errors_total{op,kind}``, so metrics and error payloads speak
    the same vocabulary."""
    return str(_encode_error_payload(exc).get("code", "internal"))


def decode_error(payload: Optional[Dict[str, object]]) -> Exception:
    """Rebuild the server-side exception from an error payload.

    Unknown or missing codes come back as a plain
    :class:`~repro.exceptions.ReproError` carrying the message — a client
    must never crash on a code added by a newer server.
    """
    if not isinstance(payload, dict):
        return ProtocolError(f"malformed error payload: {payload!r}")
    code = payload.get("code")
    message = str(payload.get("message", ""))
    exc = _decode_error_payload(payload, code, message)
    trace_id = payload.get("trace_id")
    if trace_id is not None:
        exc.trace_id = trace_id
    return exc


def _decode_error_payload(
    payload: Dict[str, object], code, message: str
) -> Exception:
    if code == "overloaded":
        def _load_field(key):
            value = payload.get(key)
            return int(value) if value is not None else None

        return ServiceOverloadedError(
            str(payload.get("reason", "unknown")),
            str(payload.get("detail", "")),
            queue_depth=_load_field("queue_depth"),
            workers_busy=_load_field("workers_busy"),
            workers_total=_load_field("workers_total"),
        )
    if code == "stale_index":
        return StaleIndexError(
            str(payload.get("engine", "?")),
            str(payload.get("artifact", "?")),
            int(payload.get("expected_version", -1)),
            int(payload.get("found_version", -1)),
        )
    if code == "unknown_graph":
        return UnknownGraphError(str(payload.get("name", "?")))
    if code == "replica_diverged":
        return ReplicaDivergedError(
            int(payload.get("expected_version", -1)),
            int(payload.get("found_version", -1)),
        )
    if code == "cancelled":
        return QueryCancelled(message)
    if code == "timeout":
        return TimeoutError(message)
    klass = _SIMPLE_CODES.get(code)
    if klass is not None:
        return klass(message)
    detail = payload.get("type")
    prefix = f"remote {detail}: " if detail else "remote error: "
    return ReproError(prefix + message)
