"""Wire-protocol serving: the network face of the :class:`~repro.api.GraphDB` facade.

* :class:`GraphCatalog` — the multi-tenant registry of named databases;
* :class:`GraphServer` — the asyncio TCP server speaking the
  length-prefixed JSON frame protocol of :mod:`repro.server.protocol`;
* the protocol module's frame codec and error mapping, shared with the
  synchronous :class:`~repro.client.GraphClient`.
"""

from repro.server.catalog import GraphCatalog
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    decode_error,
    encode_error,
    encode_frame,
    read_frame,
    read_frame_sync,
)
from repro.server.server import GraphServer

__all__ = [
    "GraphCatalog",
    "GraphServer",
    "MAX_FRAME_BYTES",
    "decode_error",
    "encode_error",
    "encode_frame",
    "read_frame",
    "read_frame_sync",
]
