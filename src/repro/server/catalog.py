"""GraphCatalog: the multi-tenant registry of named graph databases.

One wire server fronts many tenants.  Each catalog entry is a fully
independent :class:`~repro.api.GraphDB` — its own
:class:`~repro.store.VersionedGraphStore` (version chain, writer queue) and
:class:`~repro.service.QueryService` (worker pool, admission queue) — so
one tenant's overload sheds *that tenant's* requests without touching the
others, and a dropped tenant releases every resource it owned.

The catalog is the server's dispatch table, but it is useful standalone:
an embedding process can host several independent graphs behind one object
and the wire server simply puts that object on the network.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, Iterable, Optional, Sequence, Tuple
from urllib.parse import quote, unquote

from repro.api import GraphDB, GraphSource
from repro.exceptions import CatalogError, UnknownGraphError
from repro.graph.digraph import DataGraph
from repro.graph.io import load_graph_json
from repro.service.service import ServiceConfig
from repro.session.session import QuerySession
from repro.store.versioned import VersionedGraphStore
from repro.wal.durability import (
    WalDurability,
    is_tenant_directory,
    remove_tenant_directory,
)


class GraphCatalog:
    """A named, thread-safe registry of independent :class:`GraphDB` tenants.

    Parameters
    ----------
    config:
        Default :class:`ServiceConfig` for databases the catalog creates
        (per-tenant overrides via :meth:`create`'s ``config``).
    data_dir:
        When set, the catalog is **durable**: every tenant created through
        it gets its own write-ahead-log directory under ``data_dir``
        (the tenant name, percent-encoded), each fold journals before it
        publishes, and :meth:`open` on the same ``data_dir`` recovers
        every tenant to its exact pre-crash head version.
    checkpoint_every:
        Auto-checkpoint policy for durable tenants (see
        :class:`~repro.wal.WalDurability`); ``None`` leaves checkpointing
        to explicit ``checkpoint()`` calls.

    Databases *created* through the catalog are owned by it (dropped or
    closed with it); databases *attached* keep their original owner.
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        data_dir: Optional[str] = None,
        checkpoint_every: Optional[int] = None,
    ) -> None:
        self._config = config
        self._data_dir = None if data_dir is None else os.fspath(data_dir)
        self._checkpoint_every = checkpoint_every
        self._lock = threading.Lock()
        self._databases: Dict[str, GraphDB] = {}
        self._owned: Dict[str, bool] = {}
        self._storage: Dict[str, str] = {}
        self._closed = False

    # ------------------------------------------------------------------ #
    # durable open / recovery
    # ------------------------------------------------------------------ #

    @classmethod
    def open(
        cls,
        data_dir: str,
        config: Optional[ServiceConfig] = None,
        checkpoint_every: Optional[int] = None,
        **session_kwargs,
    ) -> "GraphCatalog":
        """Open a durable catalog, recovering every tenant under ``data_dir``.

        Each subdirectory holding tenant state (a checkpoint or a delta
        log) is recovered — checkpoint loaded, journal tail replayed,
        version-checked — and registered under its decoded name, owned by
        the catalog.  New tenants created afterwards are durable in the
        same directory.  This is what a restarted
        :class:`~repro.server.GraphServer` calls: the catalog it gets back
        serves every tenant at the exact head version the write-ahead log
        last acknowledged.
        """
        catalog = cls(
            config=config, data_dir=data_dir, checkpoint_every=checkpoint_every
        )
        os.makedirs(catalog._data_dir, exist_ok=True)
        for entry in sorted(os.listdir(catalog._data_dir)):
            directory = os.path.join(catalog._data_dir, entry)
            if not os.path.isdir(directory) or not is_tenant_directory(directory):
                continue
            name = unquote(entry)
            database = GraphDB.open_durable(
                directory,
                config=config,
                checkpoint_every=checkpoint_every,
                name=name,
                **session_kwargs,
            )
            with catalog._lock:
                catalog._databases[name] = database
                catalog._owned[name] = True
                catalog._storage[name] = directory
        return catalog

    @property
    def data_dir(self) -> Optional[str]:
        """The durable storage root (``None`` for in-memory catalogs)."""
        return self._data_dir

    def _tenant_directory(self, name: str) -> str:
        return os.path.join(self._data_dir, quote(name, safe=""))

    # ------------------------------------------------------------------ #
    # tenant lifecycle
    # ------------------------------------------------------------------ #

    @staticmethod
    def _check_name(name) -> str:
        if not isinstance(name, str) or not name:
            raise CatalogError(f"graph name must be a non-empty string, got {name!r}")
        return name

    def create(
        self,
        name: str,
        source: GraphSource = None,
        labels: Sequence[str] = (),
        edges: Iterable[Tuple[int, int]] = (),
        config: Optional[ServiceConfig] = None,
        exist_ok: bool = False,
        **session_kwargs,
    ) -> GraphDB:
        """Create (and own) a new named database.

        ``source`` accepts everything :meth:`GraphDB.open` does; with no
        source, ``labels``/``edges`` seed the initial graph (both empty
        gives an empty database to :meth:`GraphDB.ingest` into).  A name
        collision raises :class:`~repro.exceptions.CatalogError` unless
        ``exist_ok`` — then the existing database is returned unchanged.

        In a durable catalog (``data_dir`` set) the new tenant gets its
        own write-ahead-log directory seeded with an initial checkpoint
        of the starting graph, so even a tenant that crashes before its
        first delta recovers.
        """
        self._check_name(name)
        with self._lock:
            if self._closed:
                raise CatalogError("catalog is closed")
            existing = self._databases.get(name)
            if existing is not None:
                if exist_ok:
                    return existing
                raise CatalogError(f"graph {name!r} already exists")
            if self._data_dir is not None:
                database = self._create_durable(
                    name, source, labels, edges, config, **session_kwargs
                )
            elif source is None and (labels or edges):
                database = GraphDB.from_edges(
                    labels, edges, name=name, config=config or self._config,
                    **session_kwargs,
                )
            else:
                database = GraphDB.open(
                    source, config=config or self._config, **session_kwargs
                )
            self._databases[name] = database
            self._owned[name] = True
            return database

    def _create_durable(
        self,
        name: str,
        source: GraphSource,
        labels: Sequence[str],
        edges: Iterable[Tuple[int, int]],
        config: Optional[ServiceConfig],
        **session_kwargs,
    ) -> GraphDB:
        """Provision WAL storage for a new tenant and open it (lock held)."""
        if isinstance(source, VersionedGraphStore):
            raise CatalogError(
                "a durable catalog cannot adopt an existing VersionedGraphStore "
                f"for {name!r} — attach() it instead (its owner keeps durability)"
            )
        directory = self._tenant_directory(name)
        if is_tenant_directory(directory):
            raise CatalogError(
                f"durable storage for {name!r} already exists at {directory}; "
                "recover it with GraphCatalog.open(data_dir)"
            )
        if source is None:
            opened: GraphSource = DataGraph(
                list(labels), sorted(set(edges)), name=name
            )
            initial = opened
        elif isinstance(source, (str, os.PathLike)):
            opened = load_graph_json(os.fspath(source), name=name)
            initial = opened
        elif isinstance(source, QuerySession):
            opened = source
            initial = source.graph
        elif isinstance(source, DataGraph):
            opened = source
            initial = source
        else:
            raise CatalogError(
                f"cannot create durable tenant {name!r} from {type(source).__name__}"
            )
        durability = WalDurability.create(
            directory, initial, checkpoint_every=self._checkpoint_every
        )
        try:
            database = GraphDB.open(
                opened,
                config=config or self._config,
                durability=durability,
                **session_kwargs,
            )
        except BaseException:
            durability.close()
            remove_tenant_directory(directory)
            raise
        self._storage[name] = directory
        return database

    def attach(self, name: str, database: GraphDB, owned: bool = False) -> GraphDB:
        """Register an existing database under ``name``.

        With ``owned=False`` (default) the caller keeps lifecycle control:
        dropping or closing the catalog deregisters the database without
        closing it.
        """
        self._check_name(name)
        with self._lock:
            if self._closed:
                raise CatalogError("catalog is closed")
            if name in self._databases:
                raise CatalogError(f"graph {name!r} already exists")
            self._databases[name] = database
            self._owned[name] = owned
            return database

    def drop(
        self, name: str, force: bool = False, delete_storage: bool = False
    ) -> None:
        """Remove a tenant; an owned database is closed (workers stopped).

        A tenant with live pinned snapshots — a client-held pin, a batch
        mid-flight, a server stream still paging — is **refused**
        (:class:`~repro.exceptions.CatalogError` naming the pin count):
        closing its store under those readers would yank every pinned
        epoch out from under them.  Pass ``force=True`` to drop anyway
        (outstanding snapshots then fail with
        :class:`~repro.exceptions.StoreError` on their next read).

        ``delete_storage=True`` also removes a durable tenant's
        write-ahead-log directory, so a restart does not resurrect it;
        by default the files survive for a later
        :meth:`GraphCatalog.open`.
        """
        with self._lock:
            database = self._databases.get(name)
            if database is None:
                raise UnknownGraphError(name, self._databases)
            owned = self._owned.get(name, False)
            if owned and not force:
                pins = getattr(database.store, "total_pin_count", 0)
                if pins:
                    raise CatalogError(
                        f"graph {name!r} has {pins} live pinned snapshot(s) "
                        "(release them, or drop with force=True)"
                    )
            self._databases.pop(name, None)
            self._owned.pop(name, None)
            storage = self._storage.pop(name, None)
        if owned:
            database.close()
        if delete_storage and storage is not None:
            remove_tenant_directory(storage)

    def get(self, name: str) -> GraphDB:
        """The database registered under ``name`` (:class:`UnknownGraphError` if absent)."""
        with self._lock:
            database = self._databases.get(self._check_name(name))
            if database is None:
                raise UnknownGraphError(name, self._databases)
            return database

    def names(self) -> Tuple[str, ...]:
        """The registered graph names, sorted."""
        with self._lock:
            return tuple(sorted(self._databases))

    def __contains__(self, name: object) -> bool:
        with self._lock:
            return name in self._databases

    def __len__(self) -> int:
        with self._lock:
            return len(self._databases)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Drop every tenant; owned databases are closed (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            databases = [
                (database, self._owned.get(name, False))
                for name, database in self._databases.items()
            ]
            self._databases.clear()
            self._owned.clear()
            self._storage.clear()
        for database, owned in databases:
            if owned:
                database.close()

    def __enter__(self) -> "GraphCatalog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GraphCatalog(graphs={list(self.names())})"
