"""GraphCatalog: the multi-tenant registry of named graph databases.

One wire server fronts many tenants.  Each catalog entry is a fully
independent :class:`~repro.api.GraphDB` — its own
:class:`~repro.store.VersionedGraphStore` (version chain, writer queue) and
:class:`~repro.service.QueryService` (worker pool, admission queue) — so
one tenant's overload sheds *that tenant's* requests without touching the
others, and a dropped tenant releases every resource it owned.

The catalog is the server's dispatch table, but it is useful standalone:
an embedding process can host several independent graphs behind one object
and the wire server simply puts that object on the network.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.api import GraphDB, GraphSource
from repro.exceptions import CatalogError, UnknownGraphError
from repro.service.service import ServiceConfig


class GraphCatalog:
    """A named, thread-safe registry of independent :class:`GraphDB` tenants.

    Parameters
    ----------
    config:
        Default :class:`ServiceConfig` for databases the catalog creates
        (per-tenant overrides via :meth:`create`'s ``config``).

    Databases *created* through the catalog are owned by it (dropped or
    closed with it); databases *attached* keep their original owner.
    """

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self._config = config
        self._lock = threading.Lock()
        self._databases: Dict[str, GraphDB] = {}
        self._owned: Dict[str, bool] = {}
        self._closed = False

    # ------------------------------------------------------------------ #
    # tenant lifecycle
    # ------------------------------------------------------------------ #

    @staticmethod
    def _check_name(name) -> str:
        if not isinstance(name, str) or not name:
            raise CatalogError(f"graph name must be a non-empty string, got {name!r}")
        return name

    def create(
        self,
        name: str,
        source: GraphSource = None,
        labels: Sequence[str] = (),
        edges: Iterable[Tuple[int, int]] = (),
        config: Optional[ServiceConfig] = None,
        exist_ok: bool = False,
        **session_kwargs,
    ) -> GraphDB:
        """Create (and own) a new named database.

        ``source`` accepts everything :meth:`GraphDB.open` does; with no
        source, ``labels``/``edges`` seed the initial graph (both empty
        gives an empty database to :meth:`GraphDB.ingest` into).  A name
        collision raises :class:`~repro.exceptions.CatalogError` unless
        ``exist_ok`` — then the existing database is returned unchanged.
        """
        self._check_name(name)
        with self._lock:
            if self._closed:
                raise CatalogError("catalog is closed")
            existing = self._databases.get(name)
            if existing is not None:
                if exist_ok:
                    return existing
                raise CatalogError(f"graph {name!r} already exists")
            if source is None and (labels or edges):
                database = GraphDB.from_edges(
                    labels, edges, name=name, config=config or self._config,
                    **session_kwargs,
                )
            else:
                database = GraphDB.open(
                    source, config=config or self._config, **session_kwargs
                )
            self._databases[name] = database
            self._owned[name] = True
            return database

    def attach(self, name: str, database: GraphDB, owned: bool = False) -> GraphDB:
        """Register an existing database under ``name``.

        With ``owned=False`` (default) the caller keeps lifecycle control:
        dropping or closing the catalog deregisters the database without
        closing it.
        """
        self._check_name(name)
        with self._lock:
            if self._closed:
                raise CatalogError("catalog is closed")
            if name in self._databases:
                raise CatalogError(f"graph {name!r} already exists")
            self._databases[name] = database
            self._owned[name] = owned
            return database

    def drop(self, name: str) -> None:
        """Remove a tenant; an owned database is closed (workers stopped)."""
        with self._lock:
            database = self._databases.pop(name, None)
            if database is None:
                raise UnknownGraphError(name, self._databases)
            owned = self._owned.pop(name, False)
        if owned:
            database.close()

    def get(self, name: str) -> GraphDB:
        """The database registered under ``name`` (:class:`UnknownGraphError` if absent)."""
        with self._lock:
            database = self._databases.get(self._check_name(name))
            if database is None:
                raise UnknownGraphError(name, self._databases)
            return database

    def names(self) -> Tuple[str, ...]:
        """The registered graph names, sorted."""
        with self._lock:
            return tuple(sorted(self._databases))

    def __contains__(self, name: object) -> bool:
        with self._lock:
            return name in self._databases

    def __len__(self) -> int:
        with self._lock:
            return len(self._databases)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Drop every tenant; owned databases are closed (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            databases = [
                (database, self._owned.get(name, False))
                for name, database in self._databases.items()
            ]
            self._databases.clear()
            self._owned.clear()
        for database, owned in databases:
            if owned:
                database.close()

    def __enter__(self) -> "GraphCatalog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GraphCatalog(graphs={list(self.names())})"
