"""Versioned graph store: MVCC snapshots over one evolving data graph.

The dynamic subsystem (PR 2) made *update-then-query* cheap for a
single-threaded owner: :meth:`QuerySession.apply` patches the cached
indexes in place.  In-place patching is exactly what concurrent readers
cannot tolerate, though — a long-running batch would observe a torn index
mid-patch.  This package resolves the tension with multi-version
concurrency control:

* :class:`VersionedGraphStore` — an immutable **version chain**.  Each
  epoch owns a frozen :class:`~repro.graph.digraph.DataGraph` snapshot and
  its per-version artifact cache (a frozen
  :class:`~repro.session.QuerySession`).  Writers fork the head
  copy-on-write, fold a :class:`~repro.dynamic.GraphDelta` through the
  existing patch-or-rebuild machinery, and publish with one pointer swap;
  an optional background writer queue (:meth:`~VersionedGraphStore.apply_async`)
  folds a streamed feed in submission order.
* :class:`StoreSnapshot` — an epoch **pin** with refcounted release.  A
  batch pins the version it starts on and is guaranteed bit-identical
  answers for that version no matter how many writes land meanwhile;
  releasing the last pin lets the store garbage-collect the epoch and its
  cached indexes.
* :class:`StoreStats` — applies, no-ops, GC count, peak chain length.

Readers never block writers and writers never block readers: pinning takes
a tiny chain mutex, folding happens outside it.

>>> store = VersionedGraphStore(graph)
>>> with store.pin() as snap:          # epoch pinned
...     snap.run_batch(queries)        # consistent at snap.version
>>> store.apply(delta)                 # publishes a new head meanwhile
"""

from repro.store.versioned import (
    StoreSnapshot,
    StoreStats,
    VersionedGraphStore,
    VersionRecord,
)

__all__ = [
    "StoreSnapshot",
    "StoreStats",
    "VersionRecord",
    "VersionedGraphStore",
]
