"""MVCC versioned graph store: immutable epochs, pinning, a writer queue.

The store keeps an **immutable version chain**: one :class:`VersionRecord`
per published graph version, each owning the frozen :class:`DataGraph`
snapshot of that version plus its per-version artifact cache (a frozen
:class:`~repro.session.QuerySession` — the reachability index, closure,
bitmaps, catalogs and RIGs of exactly that epoch).

Concurrency contract
--------------------
* **Readers pin, never lock.**  :meth:`VersionedGraphStore.pin` increments
  a refcount on the current head under a tiny chain mutex and hands back a
  :class:`StoreSnapshot`; every read the snapshot serves — single queries,
  whole batches — sees that one version forever, no matter how many writes
  publish behind it.
* **Writers fold, then publish.**  :meth:`VersionedGraphStore.apply` forks
  the head's session copy-on-write (:meth:`QuerySession.fork`), folds the
  :class:`~repro.dynamic.GraphDelta` into the fork through the existing
  patch-or-rebuild machinery, and publishes the fork as the new head with
  one pointer swap under the chain mutex.  Readers pinned to older epochs
  never observe a torn artifact because no artifact they can reach is ever
  mutated.
* **Writers are serialised, readers are not.**  A writer mutex orders
  concurrent ``apply`` calls; the fold itself runs outside the chain
  mutex, so pinning (and reading) proceeds during even a slow fold.
* **Unpinned epochs are garbage-collected.**  When the head advances or a
  pin is released, every non-head record with zero pins is retired: its
  artifact caches are dropped and the record leaves the chain
  (:attr:`StoreStats.gc_count` counts them).
"""

from __future__ import annotations

import queue as queue_module
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from typing import Dict, List, Optional, Tuple, Union

from repro.dynamic.delta import GraphDelta
from repro.dynamic.maintenance import ApplyReport
from repro.exceptions import StoreError
from repro.graph.digraph import DataGraph
from repro.matching.result import Budget, MatchReport
from repro.obs.context import trace_span
from repro.query.pattern import PatternQuery
from repro.session.batch import BatchReport
from repro.session.session import QuerySession


class VersionRecord:
    """One epoch of the version chain: a frozen graph + its artifact cache."""

    __slots__ = ("version", "graph", "session", "pins", "retired")

    def __init__(self, version: int, graph, session: QuerySession) -> None:
        self.version = version
        self.graph = graph
        self.session = session
        self.pins = 0
        self.retired = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"VersionRecord(version={self.version}, pins={self.pins}, "
            f"retired={self.retired})"
        )


class StoreSnapshot:
    """A pinned, immutable read view of one store epoch.

    Obtained from :meth:`VersionedGraphStore.pin`; usable as a context
    manager so the pin is always released::

        with store.pin() as snap:
            report = snap.query(query)

    Every read goes through the epoch's frozen session, so repeated queries
    enjoy the same artifact reuse a plain :class:`QuerySession` gives —
    just guaranteed against one version.  After :meth:`release`, reads
    raise :class:`~repro.exceptions.StoreError`.
    """

    __slots__ = ("_store", "_record", "_released", "_release_lock")

    def __init__(self, store: "VersionedGraphStore", record: VersionRecord) -> None:
        self._store = store
        self._record = record
        self._released = False
        self._release_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # pinned state
    # ------------------------------------------------------------------ #

    def _require_pinned(self) -> VersionRecord:
        if self._released:
            raise StoreError("snapshot was already released")
        return self._record

    @property
    def version(self) -> int:
        """The pinned graph version."""
        return self._require_pinned().version

    @property
    def graph(self):
        """The pinned immutable data graph."""
        return self._require_pinned().graph

    @property
    def session(self) -> QuerySession:
        """The pinned epoch's frozen artifact cache / query executor."""
        return self._require_pinned().session

    @property
    def released(self) -> bool:
        """True once the pin has been given back."""
        return self._released

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #

    def query(
        self,
        query: PatternQuery,
        engine: str = "GM",
        budget: Optional[Budget] = None,
        injective: bool = False,
    ) -> MatchReport:
        """Evaluate one query against the pinned version."""
        return self._require_pinned().session.query(
            query, engine=engine, budget=budget, injective=injective
        )

    def count(
        self, query: PatternQuery, engine: str = "GM", budget: Optional[Budget] = None
    ) -> int:
        """Number of occurrences of ``query`` at the pinned version.

        Counting drain over the streaming iterator — no occurrence list is
        materialised (see :meth:`QuerySession.count`).
        """
        return self._require_pinned().session.count(query, engine=engine, budget=budget)

    def histogram(
        self,
        query: PatternQuery,
        node: Optional[int] = None,
        engine: str = "GM",
        budget: Optional[Budget] = None,
    ) -> Dict[str, int]:
        """Per-label participating-node histogram at the pinned version.

        Streamed aggregation drain — see :meth:`QuerySession.histogram`.
        """
        return self._require_pinned().session.histogram(
            query, node=node, engine=engine, budget=budget
        )

    def explain(
        self,
        query: PatternQuery,
        engine: str = "GM",
        analyze: bool = False,
        budget: Optional[Budget] = None,
        injective: bool = False,
    ):
        """EXPLAIN (or EXPLAIN ANALYZE) ``query`` at the pinned version.

        Returns a :class:`~repro.explain.QueryPlan` — see
        :meth:`QuerySession.explain`.
        """
        return self._require_pinned().session.explain(
            query, engine=engine, analyze=analyze, budget=budget, injective=injective
        )

    def stream(self, query: PatternQuery, engine: str = "GM", budget: Optional[Budget] = None):
        """Incrementally evaluate ``query`` at the pinned version.

        Returns a :class:`~repro.matching.stream.MatchStream` whose
        occurrences are guaranteed to describe this snapshot's version; the
        caller keeps the pin until it is done consuming.
        """
        return self._require_pinned().session.stream(query, engine=engine, budget=budget)

    def run_batch(self, queries, **kwargs) -> BatchReport:
        """Execute a batch against the pinned version (see
        :meth:`QuerySession.run_batch`)."""
        return self._require_pinned().session.run_batch(queries, **kwargs)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def release(self) -> None:
        """Give the pin back (idempotent).  Unpinned old epochs may be GCed.

        Safe under concurrent release attempts (e.g. a worker finishing a
        caller-pinned ticket racing the caller's own cleanup): exactly one
        of them decrements the record's pin count.
        """
        with self._release_lock:
            if self._released:
                return
            self._released = True
        self._store._release(self._record)

    def __enter__(self) -> "StoreSnapshot":
        self._require_pinned()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "released" if self._released else "pinned"
        return f"StoreSnapshot(version={self._record.version}, {state})"


class StoreStats:
    """Counters describing the store's write / GC activity.

    When a :class:`~repro.obs.metrics.MetricsRegistry` is bound via
    :meth:`bind_registry`, recordings also increment the shared ``store_*``
    families (monotone; never reset by epoch GC).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.applies = 0
        self.noop_applies = 0
        self.apply_seconds = 0.0
        self.gc_count = 0
        self.peak_versions = 1
        self._m_applies = None
        self._m_noop = None
        self._m_gc = None
        self._m_apply_seconds = None

    def bind_registry(self, registry) -> None:
        """Mirror every future recording into ``store_*`` metric families."""
        self._m_applies = registry.counter(
            "store_applies_total", "Delta folds published as new epochs"
        )
        self._m_noop = registry.counter(
            "store_noop_applies_total", "Delta folds that changed nothing"
        )
        self._m_gc = registry.counter(
            "store_gc_retired_total", "Unpinned epochs retired by the garbage collector"
        )
        self._m_apply_seconds = registry.histogram(
            "store_apply_seconds", "Fold duration (delta absorb + publish)"
        )

    def note_apply(self, report: ApplyReport) -> None:
        with self._lock:
            if report.new_version == report.old_version:
                self.noop_applies += 1
            else:
                self.applies += 1
                self.apply_seconds += report.seconds
        if self._m_applies is not None:
            if report.new_version == report.old_version:
                self._m_noop.inc()
            else:
                self._m_applies.inc()
                self._m_apply_seconds.observe(report.seconds)

    def note_gc(self, count: int = 1) -> None:
        with self._lock:
            self.gc_count += count
        if self._m_gc is not None:
            self._m_gc.inc(count)

    def note_versions(self, retained: int) -> None:
        with self._lock:
            if retained > self.peak_versions:
                self.peak_versions = retained

    def snapshot(self) -> Dict[str, object]:
        """A copy of every counter (for reports and the service stats)."""
        with self._lock:
            return {
                "applies": self.applies,
                "noop_applies": self.noop_applies,
                "apply_seconds": round(self.apply_seconds, 6),
                "gc_count": self.gc_count,
                "peak_versions": self.peak_versions,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StoreStats({self.snapshot()})"


class VersionedGraphStore:
    """Concurrent MVCC store over one evolving data graph.

    Parameters
    ----------
    graph:
        The initial :class:`DataGraph`, or an existing
        :class:`~repro.session.QuerySession` whose artifacts seed the first
        epoch.  Either way the store takes ownership: the epoch session is
        frozen, so in-place ``apply`` on it raises and all writes flow
        through the store.
    warm_on_publish:
        When True, the writer rebuilds — *before* publishing — every
        artifact the fold had to invalidate, so a new head is always as
        warm as its predecessor and readers never pay a rebuild.  Costs
        writer latency, never reader latency.
    durability:
        Optional write-ahead hook (e.g.
        :class:`~repro.wal.WalDurability`).  When set, every effective
        delta is journaled — durably, via the hook's ``journal`` — *before*
        its epoch is published or its caller acknowledged, on both the
        synchronous :meth:`apply` path and the :meth:`apply_async`
        writer-queue path; a journal failure aborts the fold with the head
        unchanged.  The store drives the hook's auto-checkpoint policy
        (``should_checkpoint`` → ``checkpoint`` right after a publish) and
        closes it with the store.
    session_kwargs:
        Forwarded to :class:`QuerySession` when ``graph`` is a plain data
        graph (``reachability_kind``, ``ordering``, ``budget``, ...).
    """

    def __init__(
        self,
        graph: Union[DataGraph, QuerySession],
        warm_on_publish: bool = False,
        durability=None,
        telemetry=None,
        **session_kwargs,
    ) -> None:
        if isinstance(graph, QuerySession):
            session = graph
        else:
            session = QuerySession(graph, **session_kwargs)
        session.freeze()
        record = VersionRecord(session.version, session.graph, session)
        self._chain_lock = threading.Lock()
        self._writer_lock = threading.Lock()
        self._records: "OrderedDict[int, VersionRecord]" = OrderedDict(
            [(record.version, record)]
        )
        self._head = record
        self._closed = False
        self.warm_on_publish = warm_on_publish
        self.durability = durability
        self.stats = StoreStats()
        self.telemetry = None
        self._m_pins = None
        # Lazily started background writer (apply_async).
        self._write_queue: Optional[queue_module.Queue] = None
        self._writer_thread: Optional[threading.Thread] = None
        # Publish listeners (replication log shipping): called under the
        # writer lock, right after the head swap, in registration order.
        self._publish_listeners: List = []
        self.bind_telemetry(telemetry)

    def add_publish_listener(self, listener) -> None:
        """Register ``listener(delta, old_version, new_version, published_at)``.

        Called for every *effective* fold (no-ops publish nothing), after
        the new head is visible to readers but still under the writer lock
        — so listeners observe publishes in exactly version order, which is
        what lets the replication hub ship a gapless delta stream without
        re-reading the journal.  Listeners must be fast and must not apply
        deltas to this store (deadlock: the writer lock is held).  A
        listener that raises is dropped from subsequent publishes by the
        caller's own error handling, not here — exceptions are swallowed so
        a broken subscriber can never poison the write path.
        """
        with self._chain_lock:
            self._publish_listeners.append(listener)

    def remove_publish_listener(self, listener) -> None:
        """Deregister a publish listener (missing listeners are ignored)."""
        with self._chain_lock:
            try:
                self._publish_listeners.remove(listener)
            except ValueError:
                pass

    def bind_telemetry(self, telemetry) -> None:
        """Attach a :class:`~repro.obs.Telemetry` bundle to the store.

        Binds the store counters (``store_*`` families), registers the
        version-chain gauges as snapshot-time callbacks (zero hot-path
        cost), propagates the bundle to the head epoch's session (forked
        epochs inherit it through :meth:`QuerySession.fork`), and binds the
        durability hook's ``wal_*`` families when one is attached.  Binding
        ``None`` is a no-op.
        """
        if telemetry is None:
            return
        self.telemetry = telemetry
        registry = telemetry.registry
        self.stats.bind_registry(registry)
        self._m_pins = registry.counter(
            "store_pins_total", "Snapshot pins taken against the version chain"
        )
        registry.gauge(
            "store_head_version", "Latest published graph version",
            fn=lambda: self.head_version,
        )
        registry.gauge(
            "store_versions_retained", "Epochs currently in the chain",
            fn=lambda: self.num_versions_retained,
        )
        registry.gauge(
            "store_pinned_epochs", "Epochs with at least one live pin",
            fn=lambda: self.pinned_epoch_count,
        )
        registry.gauge(
            "store_live_pins", "Total live pins across retained epochs",
            fn=lambda: self.total_pin_count,
        )
        with self._chain_lock:
            head = self._head
        head.session.bind_telemetry(telemetry)
        if self.durability is not None and hasattr(self.durability, "bind_registry"):
            self.durability.bind_registry(registry)

    # ------------------------------------------------------------------ #
    # read side: pinning
    # ------------------------------------------------------------------ #

    def pin(self, version: Optional[int] = None) -> StoreSnapshot:
        """Pin an epoch (the head by default) and return its snapshot.

        Pinning a specific retained ``version`` is allowed while that
        version is still in the chain (pinned by someone, or the head);
        asking for a retired version raises :class:`StoreError`.
        """
        with self._chain_lock:
            if self._closed:
                raise StoreError("store is closed")
            if version is None:
                record = self._head
            else:
                record = self._records.get(version)
                if record is None:
                    raise StoreError(
                        f"version {version} is not retained "
                        f"(chain holds {sorted(self._records)})"
                    )
            record.pins += 1
            snapshot = StoreSnapshot(self, record)
        if self._m_pins is not None:
            self._m_pins.inc()
        return snapshot

    def _release(self, record: VersionRecord) -> None:
        with self._chain_lock:
            record.pins -= 1
            self._gc_locked()

    def _gc_locked(self) -> None:
        """Retire every non-head, unpinned record (chain lock held)."""
        retired: List[VersionRecord] = []
        for version in list(self._records):
            record = self._records[version]
            if record is self._head or record.pins > 0:
                continue
            del self._records[version]
            record.retired = True
            retired.append(record)
        if retired:
            self.stats.note_gc(len(retired))
        # Drop the artifact caches outside the record dict; the sessions
        # are frozen but clear() only drops caches, which is the point.
        for record in retired:
            record.session.clear()

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    @property
    def head_version(self) -> int:
        """The latest published graph version."""
        with self._chain_lock:
            return self._head.version

    @property
    def graph(self):
        """The head epoch's immutable graph."""
        with self._chain_lock:
            return self._head.graph

    @property
    def num_versions_retained(self) -> int:
        """Number of epochs currently in the chain (head + pinned)."""
        with self._chain_lock:
            return len(self._records)

    @property
    def pinned_epoch_count(self) -> int:
        """Number of epochs with at least one live pin."""
        with self._chain_lock:
            return sum(1 for record in self._records.values() if record.pins > 0)

    @property
    def total_pin_count(self) -> int:
        """Total live pins across every retained epoch.

        The gauge a catalog consults before dropping a tenant: a non-zero
        count means snapshots (and the batches / streams reading through
        them) are still outstanding.
        """
        with self._chain_lock:
            return sum(record.pins for record in self._records.values())

    def retained_versions(self) -> Tuple[int, ...]:
        """The versions currently in the chain, oldest first."""
        with self._chain_lock:
            return tuple(self._records)

    # ------------------------------------------------------------------ #
    # write side: fold + publish
    # ------------------------------------------------------------------ #

    _WARM_BUILDERS = {
        "reachability": lambda session: session.context,
        "closure": lambda session: session.transitive_closure,
        "expanded_graph": lambda session: session.expanded_graph,
        "catalog": lambda session: session.catalog,
        "partitions": lambda session: session.partitions,
        "bitmaps": lambda session: session.label_bitmaps,
        "universe": lambda session: session.bitmap_universe,
    }

    def apply(self, delta: GraphDelta, materialize: bool = True) -> ApplyReport:
        """Fold a delta into a new epoch and publish it as the head.

        Copy-on-write: the head session is forked, the fork absorbs the
        delta through :meth:`QuerySession.apply` (patch where the delta
        shape allows, invalidate-for-lazy-rebuild otherwise), and the fork
        becomes the new head in one atomic pointer swap.  Readers pinned
        before the swap keep their version; readers pinning after it see
        the new one.  A delta that turns out to be a no-op publishes
        nothing.
        """
        return self._apply(delta, materialize=materialize)

    def _apply(
        self, delta: GraphDelta, materialize: bool = True, from_writer: bool = False
    ) -> ApplyReport:
        """The fold itself.  ``from_writer`` lets the background writer
        drain deltas that were admitted before :meth:`close` flipped
        ``_closed`` — the close contract is that every already-queued
        delta still folds ahead of the shutdown sentinel."""
        started = time.perf_counter()
        with self._writer_lock:
            if self._closed and not from_writer:
                raise StoreError("store is closed")
            head = self._head  # only writers move the head; lock held
            # Cheap no-op probe before paying the copy-on-write fork: a
            # feed replayed against a moving head routinely contains
            # already-applied edits, and forking copies O(V + E) state.
            head_graph = head.session.graph
            if isinstance(head_graph, DataGraph):
                from repro.dynamic.overlay import MutableDataGraph

                if not MutableDataGraph(head_graph, delta).delta_since_base():
                    report = ApplyReport(
                        old_version=head.version,
                        new_version=head.version,
                        num_ops=0,
                        seconds=time.perf_counter() - started,
                    )
                    self.stats.note_apply(report)
                    return report
            # A traced write (the server activated the client's context on
            # this thread) records the fold as a span tree: ``fold`` with
            # ``journal`` and ``publish`` children, and the publish
            # listeners — the replication hub among them — run while the
            # fold span is the active context, so shipped delta frames
            # carry it and every replica's apply links back to this fold.
            with trace_span("fold") as fold_span:
                fork = head.session.fork(copy_rig_caches=False)
                report = fork.apply(delta, materialize=materialize)
                if report.new_version == report.old_version:
                    self.stats.note_apply(report)
                    return report
                if fold_span is not None:
                    fold_span.meta.update(
                        base_version=int(report.old_version),
                        new_version=int(report.new_version),
                        num_ops=len(delta),
                    )
                # Write-ahead: the delta reaches stable storage before the new
                # epoch becomes reachable.  A journal failure propagates — the
                # fork is discarded, the head is untouched, the caller is never
                # acknowledged for a version that could not survive a crash.
                if self.durability is not None:
                    with trace_span("journal"):
                        self.durability.journal(
                            delta, report.old_version, report.new_version
                        )
                if self.warm_on_publish and report.invalidated:
                    started = time.perf_counter()
                    for key in report.invalidated:
                        builder = self._WARM_BUILDERS.get(key)
                        if builder is not None:
                            builder(fork)
                    report.seconds += time.perf_counter() - started
                with trace_span("publish"):
                    fork.freeze()
                    record = VersionRecord(fork.version, fork.graph, fork)
                    with self._chain_lock:
                        self._records[record.version] = record
                        self._head = record
                        self._gc_locked()
                        self.stats.note_versions(len(self._records))
                        listeners = list(self._publish_listeners)
                self.stats.note_apply(report)
                if listeners:
                    published_at = time.time()
                    for listener in listeners:
                        try:
                            listener(
                                delta, report.old_version, report.new_version, published_at
                            )
                        except Exception:  # a subscriber must never poison the write path
                            pass
                # Auto-checkpoint (still under the writer lock, so the head is
                # stable).  Failure is non-fatal: the journal still covers every
                # published version, so durability holds — only the replay tail
                # stays longer than the policy wanted.  The hook counts it.
                if self.durability is not None and self.durability.should_checkpoint():
                    try:
                        self.durability.checkpoint(record.graph)
                    except (StoreError, OSError):
                        pass
                return report

    # ------------------------------------------------------------------ #
    # write side: background writer queue
    # ------------------------------------------------------------------ #

    def _ensure_writer(self) -> None:
        with self._chain_lock:
            if self._closed:
                raise StoreError("store is closed")
            if self._writer_thread is None:
                self._write_queue = queue_module.Queue()
                self._writer_thread = threading.Thread(
                    target=self._writer_loop, name="graph-store-writer", daemon=True
                )
                self._writer_thread.start()

    def _writer_loop(self) -> None:
        queue = self._write_queue
        while True:
            item = queue.get()
            try:
                if item is None:
                    return
                delta, materialize, future = item
                try:
                    future.set_result(
                        self._apply(delta, materialize=materialize, from_writer=True)
                    )
                except BaseException as exc:  # propagate through the future
                    future.set_exception(exc)
            finally:
                queue.task_done()

    def apply_async(self, delta: GraphDelta, materialize: bool = True) -> "Future[ApplyReport]":
        """Queue a delta for the background writer; returns a future.

        Deltas are folded strictly in submission order (one writer thread);
        the future resolves to the :class:`ApplyReport` once that delta's
        epoch is published.  This is the streaming-feed entry point: a
        producer enqueues edits and readers keep serving pinned snapshots
        while the writer folds.
        """
        self._ensure_writer()
        future: "Future[ApplyReport]" = Future()
        # Enqueue under the chain lock so a racing close() cannot slot its
        # shutdown sentinel ahead of this item (which would strand the
        # future unresolved and deadlock drain()).
        with self._chain_lock:
            if self._closed:
                raise StoreError("store is closed")
            self._write_queue.put((delta, materialize, future))
        return future

    def drain(self) -> None:
        """Block until every queued async delta has been folded."""
        if self._write_queue is not None:
            self._write_queue.join()

    # ------------------------------------------------------------------ #
    # durability
    # ------------------------------------------------------------------ #

    def checkpoint(self) -> Dict[str, object]:
        """Snapshot the head version through the durability hook.

        Taken under the writer lock, so the checkpoint always captures a
        fully-published head (readers are unaffected — they pin, they
        don't lock).  After it returns, the delta log is truncated: a
        recovery from this directory loads the checkpoint and replays
        only deltas journaled afterwards.
        """
        if self.durability is None:
            raise StoreError(
                "store has no durability hook (construct with durability=...)"
            )
        with self._writer_lock:
            if self._closed:
                raise StoreError("store is closed")
            return self.durability.checkpoint(self._head.graph)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Stop the background writer and refuse new pins/applies.

        The shutdown sentinel is enqueued under the chain lock — the same
        lock :meth:`apply_async` enqueues under — so every item admitted
        before the close is queued ahead of the sentinel and still folds.
        """
        thread = None
        with self._chain_lock:
            if self._closed:
                return
            self._closed = True
            thread = self._writer_thread
            if thread is not None:
                self._write_queue.put(None)
        if thread is not None:
            thread.join(timeout=30.0)
        if self.durability is not None:
            self.durability.close()

    def __enter__(self) -> "VersionedGraphStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"VersionedGraphStore(head=v{self._head.version}, "
            f"versions={len(self._records)}, "
            f"pinned={self.pinned_epoch_count})"
        )
