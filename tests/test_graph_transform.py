"""Tests for SCC condensation, subgraph extraction and graph statistics."""

import pytest

from repro.exceptions import GraphError
from repro.graph.digraph import DataGraph
from repro.graph.generators import random_labeled_graph
from repro.graph.transform import (
    condensation,
    graph_statistics,
    induced_subgraph,
    node_prefix_subgraph,
    relabel_nodes,
    reverse_graph,
    strongly_connected_components,
    undirected_double,
)


@pytest.fixture()
def cyclic_graph():
    # Two 3-cycles (0,1,2) and (3,4,5) connected by 2 -> 3, plus a tail 5 -> 6.
    edges = [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3), (5, 6)]
    return DataGraph(["X"] * 7, edges, name="cyclic")


class TestSCC:
    def test_components(self, cyclic_graph):
        components = {frozenset(c) for c in strongly_connected_components(cyclic_graph)}
        assert frozenset({0, 1, 2}) in components
        assert frozenset({3, 4, 5}) in components
        assert frozenset({6}) in components

    def test_acyclic_graph_all_singletons(self):
        graph = DataGraph(["X"] * 4, [(0, 1), (1, 2), (2, 3)])
        assert all(len(c) == 1 for c in strongly_connected_components(graph))

    def test_condensation_structure(self, cyclic_graph):
        result = condensation(cyclic_graph)
        assert result.dag.num_nodes == 3
        # component of 0,1,2 is the same
        assert result.component_of[0] == result.component_of[1] == result.component_of[2]
        assert result.component_of[0] != result.component_of[3]

    def test_condensation_is_acyclic(self, cyclic_graph):
        result = condensation(cyclic_graph)
        assert all(len(c) == 1 for c in strongly_connected_components(result.dag))

    def test_condensation_preserves_reachability(self, cyclic_graph):
        result = condensation(cyclic_graph)
        # 0 reaches 6 in the original; the corresponding components must too.
        c0 = result.component_of[0]
        c6 = result.component_of[6]
        assert result.dag.reaches_bfs(c0, c6)

    def test_condensation_on_random_graph(self):
        graph = random_labeled_graph(80, 300, 3, seed=11)
        result = condensation(graph)
        assert sum(len(c) for c in result.components) == graph.num_nodes


class TestSubgraphs:
    def test_induced_subgraph(self, cyclic_graph):
        sub = induced_subgraph(cyclic_graph, [0, 1, 2, 3])
        assert sub.num_nodes == 4
        assert sub.has_edge(2, 3)
        assert not any(target > 3 for _, target in sub.edges())

    def test_induced_subgraph_out_of_range(self, cyclic_graph):
        with pytest.raises(GraphError):
            induced_subgraph(cyclic_graph, [0, 99])

    def test_node_prefix_subgraph(self, cyclic_graph):
        sub = node_prefix_subgraph(cyclic_graph, 3)
        assert sub.num_nodes == 3
        assert set(sub.edges()) == {(0, 1), (1, 2), (2, 0)}

    def test_node_prefix_larger_than_graph(self, cyclic_graph):
        sub = node_prefix_subgraph(cyclic_graph, 100)
        assert sub.num_nodes == cyclic_graph.num_nodes

    def test_relabel_nodes(self, cyclic_graph):
        relabelled = relabel_nodes(cyclic_graph, lambda node, label: f"N{node % 2}")
        assert relabelled.label(0) == "N0"
        assert relabelled.label(1) == "N1"
        assert set(relabelled.edges()) == set(cyclic_graph.edges())

    def test_reverse_graph(self, cyclic_graph):
        reversed_graph = reverse_graph(cyclic_graph)
        assert reversed_graph.has_edge(6, 5)
        assert not reversed_graph.has_edge(5, 6)
        assert reversed_graph.num_edges == cyclic_graph.num_edges

    def test_undirected_double(self):
        graph = DataGraph(["A", "B"], [(0, 1)])
        doubled = undirected_double(graph)
        assert doubled.has_edge(0, 1) and doubled.has_edge(1, 0)
        assert doubled.num_edges == 2


class TestStatistics:
    def test_statistics_fields(self, cyclic_graph):
        stats = graph_statistics(cyclic_graph)
        assert stats.num_nodes == 7
        assert stats.num_edges == 8
        assert stats.num_labels == 1
        assert stats.avg_degree == pytest.approx(8 / 7, abs=0.01)
        assert stats.max_inverted_list == 7

    def test_statistics_row(self, cyclic_graph):
        row = graph_statistics(cyclic_graph).as_row()
        assert row[0] == "cyclic"
        assert row[1] == 7

    def test_statistics_empty_graph(self):
        stats = graph_statistics(DataGraph([], []))
        assert stats.avg_degree == 0.0
        assert stats.max_out_degree == 0
