"""Unit tests for the core DataGraph structure."""

import pytest

from repro.exceptions import GraphError
from repro.graph.digraph import DataGraph


@pytest.fixture()
def tiny():
    # 0:A -> 1:B -> 2:C, plus 0 -> 2 and 3:B isolated-ish (2 -> 3)
    return DataGraph(["A", "B", "C", "B"], [(0, 1), (1, 2), (0, 2), (2, 3)], name="tiny")


class TestConstruction:
    def test_counts(self, tiny):
        assert tiny.num_nodes == 4
        assert tiny.num_edges == 4
        assert len(tiny) == 4

    def test_duplicate_edges_collapsed(self):
        graph = DataGraph(["A", "B"], [(0, 1), (0, 1), (0, 1)])
        assert graph.num_edges == 1

    def test_self_loops_allowed(self):
        graph = DataGraph(["A"], [(0, 0)])
        assert graph.has_edge(0, 0)

    def test_edge_out_of_range_rejected(self):
        with pytest.raises(GraphError):
            DataGraph(["A", "B"], [(0, 5)])

    def test_negative_edge_rejected(self):
        with pytest.raises(GraphError):
            DataGraph(["A", "B"], [(-1, 0)])

    def test_empty_graph(self):
        graph = DataGraph([], [])
        assert graph.num_nodes == 0
        assert graph.num_edges == 0
        assert graph.max_inverted_list_size() == 0

    def test_labels_are_strings(self):
        graph = DataGraph([1, 2], [(0, 1)])
        assert graph.label(0) == "1"

    def test_equality_and_hash(self, tiny):
        clone = DataGraph(["A", "B", "C", "B"], [(0, 1), (1, 2), (0, 2), (2, 3)])
        assert tiny == clone
        assert hash(tiny) == hash(clone)
        other = DataGraph(["A", "B", "C", "B"], [(0, 1)])
        assert tiny != other

    def test_repr_mentions_name(self, tiny):
        assert "tiny" in repr(tiny)


class TestAdjacency:
    def test_successors_sorted(self, tiny):
        assert tiny.successors(0) == (1, 2)

    def test_predecessors_sorted(self, tiny):
        assert tiny.predecessors(2) == (0, 1)

    def test_successor_set_membership(self, tiny):
        assert 1 in tiny.successor_set(0)
        assert 3 not in tiny.successor_set(0)

    def test_predecessor_set_membership(self, tiny):
        assert 0 in tiny.predecessor_set(1)

    def test_has_edge(self, tiny):
        assert tiny.has_edge(0, 1)
        assert not tiny.has_edge(1, 0)

    def test_has_edge_binary_search_agrees_with_hash(self, tiny):
        for u in tiny.nodes():
            for v in tiny.nodes():
                assert tiny.has_edge(u, v) == tiny.has_edge_binary_search(u, v)

    def test_degrees(self, tiny):
        assert tiny.out_degree(0) == 2
        assert tiny.in_degree(2) == 2
        assert tiny.degree(2) == 3

    def test_edges_iteration(self, tiny):
        assert set(tiny.edges()) == {(0, 1), (1, 2), (0, 2), (2, 3)}


class TestInvertedLists:
    def test_inverted_list(self, tiny):
        assert tiny.inverted_list("B") == (1, 3)
        assert tiny.inverted_list("A") == (0,)

    def test_inverted_list_unknown_label(self, tiny):
        assert tiny.inverted_list("Z") == ()
        assert tiny.inverted_set("Z") == frozenset()

    def test_inverted_set(self, tiny):
        assert tiny.inverted_set("B") == frozenset({1, 3})

    def test_label_alphabet(self, tiny):
        assert tiny.label_alphabet() == ("A", "B", "C")
        assert tiny.num_labels() == 3

    def test_max_inverted_list_size(self, tiny):
        assert tiny.max_inverted_list_size() == 2

    def test_inverted_lists_mapping(self, tiny):
        mapping = tiny.inverted_lists()
        assert mapping["C"] == (2,)


class TestTraversal:
    def test_bfs_forward(self, tiny):
        assert set(tiny.bfs_forward(0)) == {0, 1, 2, 3}
        assert set(tiny.bfs_forward(2)) == {2, 3}

    def test_bfs_backward(self, tiny):
        assert set(tiny.bfs_backward(2)) == {0, 1, 2}
        assert set(tiny.bfs_backward(0)) == {0}

    def test_reaches_bfs_reflexive(self, tiny):
        assert tiny.reaches_bfs(3, 3)

    def test_reaches_bfs_path(self, tiny):
        assert tiny.reaches_bfs(0, 3)
        assert not tiny.reaches_bfs(3, 0)

    def test_reaches_bfs_direct_edge(self, tiny):
        assert tiny.reaches_bfs(0, 1)
