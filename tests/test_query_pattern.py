"""Unit tests for the pattern-query model and DSL parser."""

import pytest

from repro.exceptions import QueryError, QueryParseError
from repro.query.parser import format_query, parse_query
from repro.query.pattern import EdgeType, PatternEdge, PatternQuery


@pytest.fixture()
def hybrid():
    return PatternQuery(
        ["A", "B", "C", "D"],
        [(0, 1, "child"), (1, 2, "descendant"), (0, 3, "->"), (3, 2, "=>")],
        name="hybrid",
    )


class TestEdgeType:
    def test_symbols(self):
        assert EdgeType.CHILD.symbol() == "->"
        assert EdgeType.DESCENDANT.symbol() == "=>"

    def test_pattern_edge_flags(self):
        child = PatternEdge(0, 1, EdgeType.CHILD)
        descendant = PatternEdge(0, 1, EdgeType.DESCENDANT)
        assert child.is_child and not child.is_descendant
        assert descendant.is_descendant and not descendant.is_child
        assert child.endpoints() == (0, 1)


class TestConstruction:
    def test_basic_counts(self, hybrid):
        assert hybrid.num_nodes == 4
        assert hybrid.num_edges == 4

    def test_edge_type_aliases(self):
        query = PatternQuery(["A", "B"], [(0, 1, "c")])
        assert query.edge(0, 1).is_child
        query = PatternQuery(["A", "B"], [(0, 1, "reachability")])
        assert query.edge(0, 1).is_descendant

    def test_unknown_edge_type(self):
        with pytest.raises(QueryError):
            PatternQuery(["A", "B"], [(0, 1, "weird")])

    def test_self_loop_rejected(self):
        with pytest.raises(QueryError):
            PatternQuery(["A"], [(0, 0, "child")])

    def test_duplicate_edge_rejected(self):
        with pytest.raises(QueryError):
            PatternQuery(["A", "B"], [(0, 1, "child"), (0, 1, "descendant")])

    def test_out_of_range_edge(self):
        with pytest.raises(QueryError):
            PatternQuery(["A", "B"], [(0, 5, "child")])

    def test_empty_query_rejected(self):
        with pytest.raises(QueryError):
            PatternQuery([], [])

    def test_malformed_edge_tuple(self):
        with pytest.raises(QueryError):
            PatternQuery(["A", "B"], [(0, 1)])

    def test_single_node_query(self):
        query = PatternQuery(["A"], [])
        assert query.num_edges == 0
        assert query.is_connected()


class TestAccessors:
    def test_children_parents(self, hybrid):
        assert hybrid.children(0) == (1, 3)
        assert hybrid.parents(2) == (1, 3)
        assert hybrid.neighbors(1) == (0, 2)

    def test_degree(self, hybrid):
        assert hybrid.degree(0) == 2
        assert hybrid.degree(2) == 2

    def test_edge_lookup(self, hybrid):
        assert hybrid.edge(1, 2).is_descendant
        assert hybrid.has_edge(0, 3)
        assert not hybrid.has_edge(3, 0)
        with pytest.raises(QueryError):
            hybrid.edge(3, 0)

    def test_edge_partition(self, hybrid):
        assert len(hybrid.child_edges()) == 2
        assert len(hybrid.descendant_edges()) == 2

    def test_is_hybrid(self, hybrid):
        assert hybrid.is_hybrid()
        child_only = PatternQuery(["A", "B"], [(0, 1, "child")])
        assert not child_only.is_hybrid()

    def test_labels(self, hybrid):
        assert hybrid.label(2) == "C"
        assert hybrid.labels == ("A", "B", "C", "D")

    def test_connectivity(self, hybrid):
        assert hybrid.is_connected()
        disconnected = PatternQuery(["A", "B", "C"], [(0, 1, "child")])
        assert not disconnected.is_connected()

    def test_undirected_edge_pairs(self, hybrid):
        assert (0, 1) in hybrid.undirected_edge_pairs()
        assert (2, 3) in hybrid.undirected_edge_pairs()

    def test_with_edges_and_relabeled(self, hybrid):
        reduced = hybrid.with_edges([(0, 1, "child")], name="r")
        assert reduced.num_edges == 1
        assert reduced.labels == hybrid.labels
        relabelled = hybrid.relabeled(["X", "Y", "Z", "W"])
        assert relabelled.label(0) == "X"
        with pytest.raises(QueryError):
            hybrid.relabeled(["X"])

    def test_equality_and_hash(self, hybrid):
        clone = PatternQuery(
            ["A", "B", "C", "D"],
            [(0, 1, "child"), (1, 2, "descendant"), (0, 3, "->"), (3, 2, "=>")],
        )
        assert hybrid == clone
        assert hash(hybrid) == hash(clone)
        assert hybrid != hybrid.with_edges([(0, 1, "child")])


class TestParser:
    def test_roundtrip(self, hybrid):
        parsed = parse_query(format_query(hybrid), name="hybrid")
        assert parsed == hybrid

    def test_parse_basic(self):
        query = parse_query(
            """
            # a comment
            node x A
            node y B
            edge x -> y
            """
        )
        assert query.num_nodes == 2
        assert query.edge(0, 1).is_child

    def test_parse_descendant_arrow(self):
        query = parse_query("node x A\nnode y B\nedge x => y\n")
        assert query.edge(0, 1).is_descendant

    def test_unknown_node(self):
        with pytest.raises(QueryParseError):
            parse_query("node x A\nedge x -> y\n")

    def test_duplicate_node(self):
        with pytest.raises(QueryParseError):
            parse_query("node x A\nnode x B\n")

    def test_bad_arrow(self):
        with pytest.raises(QueryParseError):
            parse_query("node x A\nnode y B\nedge x ~> y\n")

    def test_bad_directive(self):
        with pytest.raises(QueryParseError):
            parse_query("vertex x A\n")

    def test_wrong_arity(self):
        with pytest.raises(QueryParseError):
            parse_query("node x\n")
        with pytest.raises(QueryParseError):
            parse_query("node x A\nnode y B\nedge x y\n")

    def test_empty_text(self):
        with pytest.raises(QueryParseError):
            parse_query("   \n# only a comment\n")
