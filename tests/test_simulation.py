"""Tests for MatchContext, node pre-filtering and the FB-simulation algorithms."""

import pytest

from repro.exceptions import QueryError
from repro.graph.digraph import DataGraph
from repro.query.pattern import EdgeType, PatternQuery
from repro.simulation.context import ChildCheckMethod, MatchContext
from repro.simulation.dual import dual_simulation
from repro.simulation.fbsim import (
    SimulationOptions,
    backward_simulation,
    fbsim,
    fbsim_basic,
    fbsim_dag,
    forward_simulation,
)
from repro.simulation.matchsets import match_sets, node_prefilter

from fixtures_paper import A0, A1, A2, B0, B1, B2, B3, C0, C1, C2


class TestMatchContext:
    def test_match_set_is_inverted_list(self, paper_context, paper_query):
        assert paper_context.match_set(paper_query, 0) == frozenset({A0, A1, A2})
        assert paper_context.match_set(paper_query, 1) == frozenset({B0, B1, B2, B3})

    def test_match_sets_are_copies(self, paper_context, paper_query):
        sets = paper_context.match_sets(paper_query)
        sets[0].clear()
        assert paper_context.match_set(paper_query, 0)  # unchanged

    def test_edge_match_child(self, paper_context, paper_query):
        edge = paper_query.edge(0, 1)
        assert paper_context.edge_match(edge, A1, B0)
        assert not paper_context.edge_match(edge, A1, B2)

    def test_edge_match_descendant(self, paper_context, paper_query):
        edge = paper_query.edge(1, 2)
        assert paper_context.edge_match(edge, B0, C0)
        assert not paper_context.edge_match(edge, B0, C2)
        assert not paper_context.edge_match(edge, B3, C0)

    def test_edge_match_descendant_self_pair_needs_cycle(self, paper_query):
        graph = DataGraph(["A", "B", "C"], [(0, 1), (1, 2), (2, 2)])
        context = MatchContext(graph)
        edge = paper_query.edge(1, 2)
        assert not context.edge_match(edge, 1, 1)  # not on a cycle
        assert context.edge_match(edge, 2, 2)  # self-loop cycle

    def test_edge_match_with_binary_search_method(self, paper_context, paper_query):
        edge = paper_query.edge(0, 1)
        assert paper_context.edge_match_with_method(edge, A1, B0, ChildCheckMethod.BIN_SEARCH)

    def test_forward_and_backward_reachable_sets(self, paper_context):
        forward = paper_context.forward_reachable_set({A1})
        assert B0 in forward and C0 in forward and C1 in forward
        backward = paper_context.backward_reachable_set({C2})
        assert A2 in backward and B1 in backward and B2 in backward
        assert A1 not in backward

    def test_forward_targets_child_vs_descendant(self, paper_context, paper_query):
        child_edge = paper_query.edge(0, 1)
        descendant_edge = paper_query.edge(1, 2)
        assert paper_context.forward_targets(child_edge, {A1}) == {B0, C0, C1}
        assert C0 in paper_context.forward_targets(descendant_edge, {B0})

    def test_backward_sources(self, paper_context, paper_query):
        child_edge = paper_query.edge(0, 1)
        assert A1 in paper_context.backward_sources(child_edge, {B0})

    def test_label_summaries(self, paper_context):
        bit_c = paper_context.label_bit("C")
        assert paper_context.descendant_label_bits(B0) & bit_c
        assert not paper_context.descendant_label_bits(B3) & bit_c
        bit_a = paper_context.label_bit("A")
        assert paper_context.ancestor_label_bits(C0) & bit_a
        assert paper_context.label_bit("missing") == 0


class TestNodePrefilter:
    def test_prefilter_subset_of_match_sets(self, paper_context, paper_query):
        filtered = node_prefilter(paper_context, paper_query)
        full = match_sets(paper_context, paper_query)
        for node in paper_query.nodes():
            assert filtered[node] <= full[node]

    def test_prefilter_prunes_obvious_nodes(self, paper_context, paper_query):
        filtered = node_prefilter(paper_context, paper_query)
        # a0 has no C child, so it cannot match query node A (needs a direct C child).
        assert A0 not in filtered[0]
        # b3 has no descendant labelled C.
        assert B3 not in filtered[1]

    def test_prefilter_keeps_answer_nodes(self, paper_context, paper_query, paper_answer):
        filtered = node_prefilter(paper_context, paper_query)
        for occurrence in paper_answer:
            for query_node, data_node in enumerate(occurrence):
                assert data_node in filtered[query_node]

    def test_prefilter_on_isolated_query_node(self, paper_context):
        single = PatternQuery(["A"], [])
        filtered = node_prefilter(paper_context, single)
        assert filtered[0] == {A0, A1, A2}


class TestFBSimulationPaperExample:
    """The simulations must reproduce Table 1 of the paper."""

    def test_forward_simulation(self, paper_context, paper_query):
        forward = forward_simulation(paper_context, paper_query)
        assert forward[0] == {A1, A2}
        assert forward[1] == {B0, B1, B2}
        assert forward[2] == {C0, C1, C2}

    def test_backward_simulation(self, paper_context, paper_query):
        backward = backward_simulation(paper_context, paper_query)
        assert backward[0] == {A0, A1, A2}
        assert backward[1] == {B0, B2, B3}
        assert backward[2] == {C0, C1, C2}

    def test_double_simulation_basic(self, paper_context, paper_query):
        result = fbsim_basic(paper_context, paper_query)
        assert result.candidates[0] == {A1, A2}
        assert result.candidates[1] == {B0, B2}
        assert result.candidates[2] == {C0, C1, C2}
        assert result.algorithm == "FBSimBas"

    def test_double_simulation_dag(self, paper_context, paper_query):
        result = fbsim_dag(paper_context, paper_query)
        assert result.candidates == fbsim_basic(paper_context, paper_query).candidates
        assert result.algorithm == "FBSimDag"

    def test_double_simulation_dispatch(self, paper_context, paper_query):
        result = fbsim(paper_context, paper_query)
        assert result.candidates[1] == {B0, B2}
        assert result.algorithm == "FBSim"

    def test_sandwich_property(self, paper_context, paper_query, paper_answer):
        """os(q) ⊆ FB(q) ⊆ ms(q) for every query node."""
        result = fbsim(paper_context, paper_query)
        for node in paper_query.nodes():
            occurrence_set = {occ[node] for occ in paper_answer}
            assert occurrence_set <= result.candidates[node]
            assert result.candidates[node] <= set(paper_context.match_set(paper_query, node))

    def test_result_metadata(self, paper_context, paper_query):
        result = fbsim_basic(paper_context, paper_query)
        assert result.passes >= 1
        assert result.pruned >= 1
        assert not result.is_empty()
        assert result.total_candidates() == 2 + 2 + 3
        assert len(result.pruned_per_pass) == result.passes


class TestFBSimulationOptions:
    def test_initial_candidates_respected(self, paper_context, paper_query):
        initial = paper_context.match_sets(paper_query)
        initial[2] = {C0}
        result = fbsim_basic(paper_context, paper_query, initial=initial)
        assert result.candidates[2] <= {C0}

    def test_max_passes_gives_superset(self, paper_context, paper_query):
        exact = fbsim_basic(paper_context, paper_query)
        approx = fbsim_basic(
            paper_context, paper_query, options=SimulationOptions(max_passes=1)
        )
        for node in paper_query.nodes():
            assert exact.candidates[node] <= approx.candidates[node]
        assert approx.passes <= 1

    def test_child_check_methods_agree(self, paper_context, paper_query):
        reference = fbsim_basic(paper_context, paper_query).candidates
        for method in ChildCheckMethod:
            result = fbsim_basic(
                paper_context, paper_query, options=SimulationOptions(child_check=method)
            )
            assert result.candidates == reference, method

    def test_change_flags_do_not_change_result(self, paper_context, paper_query):
        with_flags = fbsim(paper_context, paper_query, options=SimulationOptions(use_change_flags=True))
        without_flags = fbsim(paper_context, paper_query, options=SimulationOptions(use_change_flags=False))
        assert with_flags.candidates == without_flags.candidates

    def test_fbsim_dag_rejects_cyclic_query(self, paper_context):
        cyclic = PatternQuery(
            ["A", "B", "C"],
            [(0, 1, "child"), (1, 2, "child"), (2, 0, "descendant")],
        )
        with pytest.raises(QueryError):
            fbsim_dag(paper_context, cyclic)

    def test_fbsim_handles_cyclic_query(self, paper_context):
        cyclic = PatternQuery(
            ["A", "B", "C"],
            [(0, 1, "child"), (1, 2, "descendant"), (2, 0, "descendant")],
        )
        result = fbsim(paper_context, cyclic)
        # The paper graph is acyclic, so a cyclic query has an empty answer
        # and double simulation must detect it (empty candidate sets).
        assert result.is_empty()

    def test_empty_match_set_query(self, paper_context):
        query = PatternQuery(["Z", "A"], [(0, 1, "child")])
        result = fbsim_basic(paper_context, query)
        assert result.is_empty()


class TestDualSimulation:
    def test_dual_equals_double_on_child_only_query(self, paper_context):
        query = PatternQuery(["A", "B"], [(0, 1, "child")])
        dual = dual_simulation(paper_context, query)
        double = fbsim_basic(paper_context, query)
        assert dual.candidates == double.candidates
        assert dual.algorithm == "DualSim"

    def test_dual_overprunes_descendant_edges(self, paper_context, paper_query):
        """Dual simulation treats (B,C) as a direct edge and may prune valid nodes."""
        dual = dual_simulation(paper_context, paper_query)
        double = fbsim_basic(paper_context, paper_query)
        for node in paper_query.nodes():
            assert dual.candidates[node] <= double.candidates[node]
