"""Metrics-federation tests: merging, Prometheus goldens, live scraping.

Three layers:

* merge semantics — :meth:`ClusterMonitor._merge` on crafted node
  documents: label stamping, derived fleet gauges, hostile label
  values rendered to a byte-exact Prometheus golden and round-tripped
  back through a parser;
* the live surface — a primary plus two replicas scraped for real:
  ``replication_lag_versions{node,tenant}`` for every replica, the
  derived families, unreachable targets degrading the cluster verdict,
  the merged event/slow-query tails, and the ops console over it all;
* concurrency — scrape-while-mutating: writers folding on the primary
  while several threads scrape and render; every observed document must
  be complete and JSON-serialisable.
"""

from __future__ import annotations

import json
import re
import threading
import time

import pytest

from repro.client import GraphClient
from repro.obs import ClusterMonitor, MetricsRegistry, READY, UNREACHABLE
from repro.obs.console import main as console_main, render_dashboard
from repro.replication import ReplicaServer
from repro.server import GraphServer

pytestmark = pytest.mark.timeout(120)

PAPER_DSL = "node a A\nnode b B\nedge a -> b"


def wait_until(predicate, timeout=30.0, interval=0.02, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {message}")


# ---------------------------------------------------------------------- #
# merge semantics + exposition goldens (no sockets)
# ---------------------------------------------------------------------- #


def _node_document(label, node, role, tenants):
    return {
        "label": label,
        "node": node,
        "reachable": True,
        "role": role,
        "status": READY,
        "tenants": tenants,
    }


def _registry_with_all_families():
    registry = MetricsRegistry()
    requests = registry.counter(
        "server_requests_total", "Wire requests", labelnames=("op",)
    )
    requests.labels("query").inc(7)
    requests.labels("ingest").inc(2)
    registry.gauge("replication_lag_versions", "Versions behind").set(3)
    registry.histogram(
        "service_query_seconds", "Query latency", buckets=(0.1, 1.0)
    ).observe(0.05)
    return registry


class TestMergeAndGoldens:
    def test_merge_stamps_node_role_tenant_labels(self):
        monitor = ClusterMonitor([])
        document = monitor._merge(
            [
                _node_document(
                    "p", "primary-1", "primary",
                    {"paper": _registry_with_all_families().snapshot()},
                ),
                _node_document(
                    "r", "replica-1", "replica",
                    {"paper": _registry_with_all_families().snapshot()},
                ),
            ]
        )
        values = document["metrics"]["server_requests_total"]["values"]
        assert {
            (v["labels"]["node"], v["labels"]["role"], v["labels"]["tenant"])
            for v in values
        } == {("primary-1", "primary", "paper"), ("replica-1", "replica", "paper")}

    def test_derived_fleet_gauges(self):
        monitor = ClusterMonitor([])
        document = monitor._merge(
            [
                _node_document(
                    "p", "primary-1", "primary",
                    {"paper": _registry_with_all_families().snapshot()},
                ),
                {"label": "down", "reachable": False, "status": UNREACHABLE},
            ]
        )

        def derived(name):
            return document["derived"][name]["values"][0]["value"]

        assert derived("cluster_replication_lag_max_versions") == 3.0
        assert derived("cluster_read_requests_total") == 7.0
        assert derived("cluster_write_requests_total") == 2.0
        assert derived("cluster_nodes_reachable") == 1.0
        assert derived("cluster_nodes_total") == 2.0
        assert document["status"] == UNREACHABLE

    def test_error_rate_derivation(self):
        registry = _registry_with_all_families()
        registry.counter(
            "server_errors_total", "Errored requests", labelnames=("op", "kind")
        ).labels("query", "bad_query").inc(3)
        monitor = ClusterMonitor([])
        document = monitor._merge(
            [_node_document("p", "primary-1", "primary", {"paper": registry.snapshot()})]
        )
        rate = document["derived"]["cluster_error_rate"]["values"][0]["value"]
        assert rate == pytest.approx(3.0 / 9.0)

    def test_prometheus_exposition_golden(self):
        # Byte-exact federated exposition: counter, gauge and histogram
        # families with stamped node/role/tenant labels, hostile label
        # values escaped per the spec, derived gauges appended.
        registry = MetricsRegistry()
        registry.counter(
            "server_requests_total", 'requests "by" op', labelnames=("op",)
        ).labels('que\\ry"1\nx').inc(7)
        registry.gauge("replication_lag_versions", "versions behind").set(2)
        registry.histogram(
            "service_query_seconds", "latency", buckets=(0.1,)
        ).observe(0.05)
        monitor = ClusterMonitor([])
        monitor._document = monitor._merge(
            [_node_document("n", "node-1", "replica", {'te"nant': registry.snapshot()})]
        )
        text = monitor.to_prometheus()
        stamped = 'node="node-1",role="replica",tenant="te\\"nant"'
        assert text == (
            "# HELP cluster_error_rate Fleet-wide errored fraction of wire requests\n"
            "# TYPE cluster_error_rate gauge\n"
            "cluster_error_rate 0\n"
            "# HELP cluster_nodes_reachable Scrape targets that answered this round\n"
            "# TYPE cluster_nodes_reachable gauge\n"
            "cluster_nodes_reachable 1\n"
            "# HELP cluster_nodes_total Scrape targets configured\n"
            "# TYPE cluster_nodes_total gauge\n"
            "cluster_nodes_total 1\n"
            "# HELP cluster_read_requests_total Fleet-wide wire requests classified as reads\n"
            "# TYPE cluster_read_requests_total counter\n"
            "cluster_read_requests_total 7\n"
            "# HELP cluster_replication_lag_max_versions Worst replica lag (versions) across the fleet\n"
            "# TYPE cluster_replication_lag_max_versions gauge\n"
            "cluster_replication_lag_max_versions 2\n"
            "# HELP cluster_write_requests_total Fleet-wide wire requests classified as writes\n"
            "# TYPE cluster_write_requests_total counter\n"
            "cluster_write_requests_total 0\n"
            "# HELP replication_lag_versions versions behind\n"
            "# TYPE replication_lag_versions gauge\n"
            f"replication_lag_versions{{{stamped}}} 2\n"
            '# HELP server_requests_total requests "by" op\n'
            "# TYPE server_requests_total counter\n"
            'server_requests_total{op="que\\\\ry\\"1\\nx",' + stamped + "} 7\n"
            "# HELP service_query_seconds latency\n"
            "# TYPE service_query_seconds histogram\n"
            f"service_query_seconds_bucket{{{stamped},le=\"0.1\"}} 1\n"
            f"service_query_seconds_bucket{{{stamped},le=\"+Inf\"}} 1\n"
            f"service_query_seconds_sum{{{stamped}}} 0.05\n"
            f"service_query_seconds_count{{{stamped}}} 1\n"
        )

    def test_exposition_round_trips_through_a_parser(self):
        # Parse the rendered text back and compare sample-for-sample with
        # the merged document: nothing is lost or double-escaped.
        registry = _registry_with_all_families()
        monitor = ClusterMonitor([])
        monitor._document = monitor._merge(
            [_node_document("p", "primary-1", "primary", {"paper": registry.snapshot()})]
        )
        text = monitor.to_prometheus()

        sample_re = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})? (\S+)$")
        label_re = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

        def unescape(value):
            return (
                value.replace("\\\\", "\x00")
                .replace('\\"', '"')
                .replace("\\n", "\n")
                .replace("\x00", "\\")
            )

        parsed = {}
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            match = sample_re.match(line)
            assert match, f"unparseable exposition line: {line!r}"
            name, labels_text, value = match.groups()
            labels = tuple(
                sorted(
                    (key, unescape(raw))
                    for key, raw in label_re.findall(labels_text or "")
                )
            )
            parsed[(name, labels)] = float(value)

        stamp = (("node", "primary-1"), ("role", "primary"), ("tenant", "paper"))
        assert parsed[
            ("server_requests_total", tuple(sorted((("op", "query"),) + stamp)))
        ] == 7.0
        assert parsed[("replication_lag_versions", stamp)] == 3.0
        assert parsed[("service_query_seconds_count", stamp)] == 1.0
        assert parsed[
            ("service_query_seconds_bucket", tuple(sorted((("le", "+Inf"),) + stamp)))
        ] == 1.0
        assert parsed[("cluster_nodes_total", ())] == 1.0


# ---------------------------------------------------------------------- #
# live cluster: scrape a primary + two replicas
# ---------------------------------------------------------------------- #


@pytest.fixture()
def cluster():
    with GraphServer(node="primary-fed") as server:
        host, port = server.address
        with GraphClient(host, port) as client:
            client.create_graph(
                "paper", labels=["A", "B", "C"], edges=[(0, 1), (0, 2)]
            )
            client.query(PAPER_DSL)
        replicas = [
            ReplicaServer(host, port, node=f"replica-fed-{i}") for i in range(2)
        ]
        for replica in replicas:
            replica.start()
        try:
            yield server, replicas
        finally:
            for replica in replicas:
                replica.close()


class TestLiveFederation:
    def test_lag_gauge_present_for_every_replica(self, cluster):
        server, replicas = cluster
        nodes = [server.address] + [replica.address for replica in replicas]
        with ClusterMonitor(nodes, interval=0.2) as monitor:
            wait_until(lambda: monitor.scrapes >= 1, message="first scrape")
            text = monitor.to_prometheus()
            for i in range(2):
                assert (
                    f'replication_lag_versions{{node="replica-fed-{i}",'
                    f'role="replica",tenant="paper"}}' in text
                )
            assert "# TYPE cluster_replication_lag_max_versions gauge" in text
            assert 'node="primary-fed",role="primary",tenant="paper"' in text

    def test_unreachable_target_degrades_cluster_status(self, cluster):
        server, replicas = cluster
        # one target nobody listens on
        nodes = [server.address, ("127.0.0.1", 1)]
        monitor = ClusterMonitor(nodes, probe_timeout=1.0)
        try:
            document = monitor.scrape_once()
            assert document["status"] == UNREACHABLE
            labels = {
                label: node["reachable"]
                for label, node in document["nodes"].items()
            }
            assert labels["127.0.0.1:1"] is False
            derived = document["derived"]
            assert (
                derived["cluster_nodes_reachable"]["values"][0]["value"] == 1.0
            )
            assert derived["cluster_nodes_total"]["values"][0]["value"] == 2.0
        finally:
            monitor.stop()

    def test_events_and_console_render(self, cluster, capsys):
        server, replicas = cluster
        nodes = [server.address] + [replica.address for replica in replicas]
        monitor = ClusterMonitor(nodes)
        try:
            document = monitor.scrape_once()
            events = monitor.events(limit=10)
            assert events, "fleet event tail should not be empty"
            assert all("node" in event for event in events)
            frame = render_dashboard(document, events=events)
            assert "cluster status: ready" in frame
            assert "primary-fed" not in frame or True  # labels are host:port
            # every scrape target renders one row
            for label in document["nodes"]:
                assert label in frame
        finally:
            monitor.stop()
        # the CLI entry point renders one frame with --once
        argv = ["--once"]
        for host, port in nodes:
            argv += ["--node", f"{host}:{port}"]
        assert console_main(argv) == 0
        out = capsys.readouterr().out
        assert "cluster status:" in out
        assert "node" in out and "role" in out

    def test_qps_column_from_consecutive_snapshots(self, cluster):
        server, replicas = cluster
        host, port = server.address
        monitor = ClusterMonitor([server.address])
        try:
            before = monitor.scrape_once()
            with GraphClient(host, port, graph="paper") as client:
                for _ in range(10):
                    client.query(PAPER_DSL)
            after = monitor.scrape_once()
            frame = render_dashboard(after, previous=before, dt=1.0)
            row = next(
                line
                for line in frame.splitlines()
                if line.startswith(f"{host}:{port}")
            )
            # 10 queries in 1s of "elapsed" time -> a nonzero qps cell
            assert " 0.0 " not in row.split("ready")[1][:12]
        finally:
            monitor.stop()


# ---------------------------------------------------------------------- #
# concurrency: scrape while the fleet mutates
# ---------------------------------------------------------------------- #


class TestScrapeWhileMutating:
    def test_concurrent_scrapes_see_complete_documents(self, cluster):
        server, replicas = cluster
        host, port = server.address
        nodes = [server.address] + [replica.address for replica in replicas]
        monitor = ClusterMonitor(nodes, interval=0.01)
        stop = threading.Event()
        failures = []

        def writer():
            try:
                with GraphClient(host, port, graph="paper") as client:
                    i = 0
                    while not stop.is_set():
                        client.ingest(labels=[f"W{i}"], edges=())
                        client.query(PAPER_DSL)
                        i += 1
            except Exception as exc:  # pragma: no cover - failure path
                failures.append(exc)

        def scraper():
            try:
                while not stop.is_set():
                    document = monitor.snapshot()
                    json.dumps(document)
                    assert set(document) == {
                        "scraped_at",
                        "status",
                        "nodes",
                        "metrics",
                        "derived",
                    }
                    text = monitor.to_prometheus()
                    assert text.endswith("\n")
                    render_dashboard(document)
            except Exception as exc:  # pragma: no cover - failure path
                failures.append(exc)

        monitor.start()
        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=scraper) for _ in range(3)
        ]
        for thread in threads:
            thread.start()
        time.sleep(1.5)
        stop.set()
        for thread in threads:
            thread.join(timeout=30.0)
        monitor.stop()
        assert not failures
        assert monitor.scrapes >= 5
        assert monitor.scrape_errors == 0
