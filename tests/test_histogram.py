"""Tests for the streamed per-label histogram drain.

``QuerySession.histogram`` (and its store/snapshot/facade passthroughs)
counts the distinct data nodes of each label participating in the result
set by draining the streaming iterator — no occurrence list is ever
materialised.  The tests verify the drain against a materialised
reference computation, across engines, under budgets, and through every
layer that exposes it.
"""

from __future__ import annotations

import pytest

from fixtures_paper import build_paper_graph, build_paper_query
from repro.api import GraphDB
from repro.exceptions import QueryError
from repro.graph.digraph import DataGraph
from repro.matching.result import Budget
from repro.query.pattern import EdgeType, PatternQuery
from repro.session import QuerySession
from repro.store import VersionedGraphStore


def fanout_graph(width: int = 6) -> DataGraph:
    labels = ["A"] + ["B"] * width + ["C"] * width
    edges = []
    for b in range(1, width + 1):
        edges.append((0, b))
        for c in range(width + 1, 2 * width + 1):
            edges.append((b, c))
    return DataGraph(labels, edges, name="fanout")


def path_query() -> PatternQuery:
    return PatternQuery(
        labels=["A", "B", "C"],
        edges=[(0, 1, EdgeType.CHILD), (1, 2, EdgeType.CHILD)],
        name="path-abc",
    )


def reference_histogram(graph, report, node=None):
    """The histogram recomputed from a materialised occurrence list."""
    participating = set()
    for occurrence in report.occurrences:
        if node is None:
            participating.update(occurrence)
        else:
            participating.add(occurrence[node])
    histogram = {}
    for data_node in participating:
        label = graph.label(data_node)
        histogram[label] = histogram.get(label, 0) + 1
    return histogram


class TestSessionHistogram:
    def test_matches_materialised_reference(self):
        graph = fanout_graph()
        session = QuerySession(graph)
        report = session.query(path_query())
        assert session.histogram(path_query()) == reference_histogram(graph, report)
        assert session.histogram(path_query()) == {"A": 1, "B": 6, "C": 6}

    def test_single_position(self):
        graph = fanout_graph()
        session = QuerySession(graph)
        report = session.query(path_query())
        for node in range(3):
            assert session.histogram(path_query(), node=node) == reference_histogram(
                graph, report, node=node
            )

    def test_paper_graph_cross_engine_agreement(self):
        graph = build_paper_graph()
        session = QuerySession(graph)
        query = build_paper_query()
        expected = session.histogram(query, engine="GM")
        for engine in ("JM", "GF", "EH"):
            assert session.histogram(query, engine=engine) == expected, engine

    def test_budget_caps_the_drain(self):
        graph = fanout_graph()
        session = QuerySession(graph)
        capped = session.histogram(path_query(), budget=Budget(max_matches=1))
        # One occurrence binds exactly one node of each query label.
        assert capped == {"A": 1, "B": 1, "C": 1}

    def test_invalid_node_raises(self):
        session = QuerySession(fanout_graph())
        with pytest.raises(QueryError):
            session.histogram(path_query(), node=3)
        with pytest.raises(QueryError):
            session.histogram(path_query(), node=-1)

    def test_empty_result_set(self):
        session = QuerySession(fanout_graph())
        missing = PatternQuery(labels=["Z"], edges=[], name="missing")
        assert session.histogram(missing) == {}


class TestLayerPassthroughs:
    def test_snapshot_histogram_is_version_pinned(self):
        store = VersionedGraphStore(fanout_graph())
        try:
            snapshot = store.pin()
            before = snapshot.histogram(path_query())
            # Publish a new version behind the pin: one more B on the A node.
            from repro.dynamic import GraphDelta

            delta = GraphDelta.for_graph(store.graph)
            new_b = delta.add_node("B")
            delta.add_edge(0, new_b)
            for c in range(7, 13):
                delta.add_edge(new_b, c)
            store.apply(delta)
            assert snapshot.histogram(path_query()) == before
            with store.pin() as head:
                assert head.histogram(path_query())["B"] == before["B"] + 1
            snapshot.release()
        finally:
            store.close()

    def test_graphdb_histogram(self):
        with GraphDB.open(fanout_graph()) as db:
            assert db.histogram(path_query()) == {"A": 1, "B": 6, "C": 6}
            assert db.histogram(path_query(), node=2) == {"C": 6}
            # DSL text works like everywhere else on the facade.
            assert db.histogram(
                "node a A\nnode b B\nedge a -> b"
            ) == {"A": 1, "B": 6}
