"""Prefix-equivalence and cross-engine agreement of streamed enumeration.

The contract of ``iter_matches`` is that streaming is *observationally
identical* to eager evaluation:

* **prefix equivalence** — for every matcher, the first ``k`` matches
  drained from ``iter_matches`` equal (order included) the occurrences of
  a full ``match()`` run truncated under ``Budget(max_matches=k)``;
* **full-drain equivalence** — an unbounded streamed drain equals the
  eager occurrence set;
* **cross-engine agreement** — every streaming-capable matcher, drained
  through the session streaming entry point, produces the same occurrence
  set on the paper workload fixtures.

Property-style: the ``k`` grid covers empty, singleton, mid-prefix,
exact-total and beyond-total budgets, on both the child-only and the
hybrid (descendant-edge) workload.
"""

from __future__ import annotations

import itertools

import pytest

from fixtures_paper import PAPER_ANSWER, build_paper_graph, build_paper_query
from repro.graph.generators import random_labeled_graph
from repro.matching.result import Budget
from repro.query.generators import random_pattern_query, to_child_only, to_descendant_only
from repro.query.pattern import EdgeType, PatternQuery
from repro.session import QuerySession

#: Matchers with a real streaming path (GM pipeline + the four engines).
STREAMING_MATCHERS = ["GM", "GM-S", "GM-F", "GM-NR", "GF", "EH", "Neo4j", "RM"]


def child_only_query() -> PatternQuery:
    return PatternQuery(
        labels=["A", "B", "C"],
        edges=[(0, 1, EdgeType.CHILD), (1, 2, EdgeType.CHILD)],
        name="CQ-abc",
    )


@pytest.fixture(scope="module")
def paper_session():
    return QuerySession(build_paper_graph())


def _iter_for(session, name, query, budget):
    """The raw occurrence iterator of matcher ``name`` (exceptions propagate)."""
    matcher = session.matcher(name)
    return matcher.iter_matches(query, budget=budget)


class TestPrefixEquivalence:
    @pytest.mark.parametrize("name", STREAMING_MATCHERS)
    @pytest.mark.parametrize("hybrid", [False, True], ids=["child", "hybrid"])
    # k=1..4 covers singleton, mid-prefix and the exact total (4 hybrid
    # answers); 7 overshoots.  k=0 is excluded: the historical budget
    # semantics are append-then-check, so max_matches=0 yields one match.
    @pytest.mark.parametrize("k", [1, 2, 3, 4, 7])
    def test_first_k_equals_truncated_match(self, paper_session, name, hybrid, k):
        query = build_paper_query() if hybrid else child_only_query()
        streamed = list(
            itertools.islice(
                _iter_for(paper_session, name, query, Budget(max_matches=None)), k
            )
        )
        truncated = paper_session.query(query, engine=name, budget=Budget(max_matches=k))
        assert streamed == list(truncated.occurrences)

    @pytest.mark.parametrize("name", STREAMING_MATCHERS)
    def test_capped_stream_equals_capped_match(self, paper_session, name):
        # Same cap on both sides: the stream must stop at it by itself.
        query = build_paper_query()
        budget = Budget(max_matches=2)
        streamed = list(_iter_for(paper_session, name, query, budget))
        eager = paper_session.query(query, engine=name, budget=budget)
        assert len(streamed) == 2
        assert streamed == list(eager.occurrences)

    @pytest.mark.parametrize("name", ["GM", "GM-S", "GM-F", "GM-NR"])
    def test_gm_full_drain_equals_paper_answer(self, paper_session, name):
        query = build_paper_query()
        budget = Budget(max_matches=None)
        assert (
            frozenset(_iter_for(paper_session, name, query, budget)) == PAPER_ANSWER
        )

    @pytest.mark.parametrize("name", STREAMING_MATCHERS)
    def test_full_drain_equals_own_eager_run(self, paper_session, name):
        # Even where engine semantics are approximate (hybrid queries via
        # closure expansion), streamed and eager runs of the *same* matcher
        # must agree exactly.
        query = build_paper_query()
        budget = Budget(max_matches=None)
        streamed = frozenset(_iter_for(paper_session, name, query, budget))
        eager = paper_session.query(query, engine=name, budget=budget)
        assert streamed == eager.occurrence_set()


class TestCrossEngineAgreement:
    # The comparator engines evaluate descendant edges through closure
    # expansion, which is exact for child-only and descendant-only queries
    # (the paper's Fig. 16 / Fig. 18 setups) — hybrid queries are a GM-only
    # capability, so cross-engine agreement is asserted on those two kinds.

    @pytest.mark.parametrize("kind", ["child", "descendant"])
    def test_streamed_sets_agree_on_paper_fixture(self, paper_session, kind):
        query = (
            child_only_query()
            if kind == "child"
            else to_descendant_only(build_paper_query(), name="DQ-paper")
        )
        budget = Budget(max_matches=None)
        answers = {
            name: frozenset(
                paper_session.stream(query, engine=name, budget=budget)
            )
            for name in STREAMING_MATCHERS
        }
        reference = answers["GM"]
        assert reference  # the fixtures are engineered to have matches
        for name, occurrences in answers.items():
            assert occurrences == reference, f"{name} disagrees with GM"

    @pytest.mark.parametrize("seed", [3, 11])
    def test_streamed_sets_agree_on_random_workload(self, seed):
        graph = random_labeled_graph(
            num_nodes=60, num_edges=180, num_labels=4, seed=seed
        )
        query = to_child_only(
            random_pattern_query(graph, num_nodes=3, seed=seed), name=f"CQ-{seed}"
        )
        session = QuerySession(graph)
        budget = Budget(max_matches=None)
        answers = {
            name: frozenset(session.stream(query, engine=name, budget=budget))
            for name in ["GM", "GF", "EH", "Neo4j", "RM"]
        }
        reference = answers["GM"]
        for name, occurrences in answers.items():
            assert occurrences == reference, f"{name} disagrees with GM (seed {seed})"
