"""Durability tests: delta write-ahead log, checkpoints, crash recovery.

Four layers, bottom-up:

* :class:`DeltaLog` — frame append/scan round-trips, torn-tail repair,
  corrupt-frame rejection;
* :class:`WalDurability` — journal / checkpoint / recover lifecycle,
  including every crash window (between journal-append and publish,
  between publish and checkpoint, mid-checkpoint, between
  checkpoint-write and log-truncate);
* the wired stack — :class:`VersionedGraphStore` journaling on both the
  sync and async writer paths, :meth:`GraphDB.open_durable`,
  :class:`GraphCatalog` durable tenants and the drop-with-pins guard;
* the acceptance bar — a :class:`GraphServer` SIGKILL'd mid-flight and
  restarted over the same ``data_dir`` recovers every tenant to the
  exact pre-crash head version with cross-engine query agreement.
"""

from __future__ import annotations

import os
import signal
import struct
import subprocess
import sys
import textwrap
import time

import pytest

from fixtures_paper import PAPER_ANSWER, build_paper_graph, build_paper_query
from repro.api import GraphDB
from repro.client import GraphClient
from repro.dynamic import GraphDelta, MutableDataGraph
from repro.exceptions import CatalogError, StoreError, WalError
from repro.graph.digraph import DataGraph
from repro.graph.io import load_graph_json, save_graph_json
from repro.server import GraphCatalog, GraphServer
from repro.store import VersionedGraphStore
from repro.wal import (
    CHECKPOINT_FILE,
    LOG_FILE,
    DeltaLog,
    WalDurability,
    is_tenant_directory,
    log_identity,
    scan_log,
)

pytestmark = pytest.mark.timeout(120)


def small_graph(name: str = "wal") -> DataGraph:
    return DataGraph(["A", "B", "C"], [(0, 1), (1, 2)], name=name)


def growth_delta(graph: DataGraph, label: str = "B") -> GraphDelta:
    """A one-node, one-edge delta against ``graph``'s head."""
    delta = GraphDelta.for_graph(graph)
    node = delta.add_node(label)
    delta.add_edge(0, node)
    return delta


# ---------------------------------------------------------------------- #
# DeltaLog: frames on disk
# ---------------------------------------------------------------------- #


class TestDeltaLog:
    def test_append_scan_round_trip(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with DeltaLog(path) as log:
            log.append({"kind": "delta", "seq": 0})
            log.append({"kind": "delta", "seq": 1})
        entries, valid, torn = scan_log(path)
        assert [entry["seq"] for entry in entries] == [0, 1]
        assert valid == os.path.getsize(path)
        assert torn == 0

    def test_missing_file_is_empty_log(self, tmp_path):
        entries, valid, torn = scan_log(str(tmp_path / "absent.log"))
        assert entries == [] and valid == 0 and torn == 0

    def test_torn_tail_detected_and_repaired(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with DeltaLog(path) as log:
            log.append({"seq": 0})
            log.append({"seq": 1})
        boundary = os.path.getsize(path)
        # simulate a crash mid-append: a complete frame followed by a stub
        with DeltaLog(path) as log:
            log.append({"seq": 2})
        with open(path, "rb+") as handle:
            handle.truncate(boundary + 3)
        entries, valid, torn = scan_log(path)
        assert [entry["seq"] for entry in entries] == [0, 1]
        assert valid == boundary and torn == 3

        log = DeltaLog(path)
        assert log.repair(valid) == 3
        log.append({"seq": 2})
        log.close()
        entries, valid, torn = scan_log(path)
        assert [entry["seq"] for entry in entries] == [0, 1, 2]
        assert torn == 0

    def test_repair_after_append_is_refused(self, tmp_path):
        log = DeltaLog(str(tmp_path / "wal.log"))
        log.append({"seq": 0})
        with pytest.raises(WalError):
            log.repair(0)
        log.close()

    def test_garbage_length_prefix_is_corruption(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(b"\xff\xff\xff\xff" + b"junk")
        with pytest.raises(WalError):
            scan_log(str(path))

    def test_complete_non_json_body_is_corruption(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(struct.pack(">I", 4) + b"abcd")
        with pytest.raises(WalError):
            scan_log(str(path))

    def test_truncate_drops_everything(self, tmp_path):
        log = DeltaLog(str(tmp_path / "wal.log"))
        log.append({"seq": 0})
        assert log.size_bytes > 0
        log.truncate()
        assert log.size_bytes == 0
        entries, _, _ = scan_log(log.path)
        assert entries == []
        log.close()

    def test_truncate_is_safe_against_a_concurrent_tailer(self, tmp_path):
        """Truncate-while-shipping: rotation must not yank bytes from a reader.

        A log shipper tails the journal by holding the file open; truncate
        rotates a fresh empty file into the path instead of truncating in
        place, so the tailer's handle keeps reading the *old* generation's
        stable bytes to a clean EOF (never a half-overwritten frame), and
        the rotation is detectable through :func:`log_identity`.
        """
        path = str(tmp_path / "wal.log")
        log = DeltaLog(path)
        log.append({"seq": 0})
        log.append({"seq": 1})
        old_size = os.path.getsize(path)
        identity_before = log_identity(path)
        assert identity_before is not None

        with open(path, "rb") as tailer:  # a shipper mid-tail
            assert log.truncations == 0
            log.truncate()
            assert log.truncations == 1
            # the old handle still sees every pre-truncate byte, then EOF
            payload = tailer.read()
            assert len(payload) == old_size
            assert tailer.read() == b""

        # the path now names a fresh generation...
        identity_after = log_identity(path)
        assert identity_after is not None
        assert identity_after != identity_before
        # ...which appends and scans independently of the old bytes
        log.append({"seq": 2})
        entries, _, torn = scan_log(path)
        assert [entry["seq"] for entry in entries] == [2]
        assert torn == 0
        log.close()


# ---------------------------------------------------------------------- #
# WalDurability: journal / checkpoint / recover
# ---------------------------------------------------------------------- #


class TestWalDurability:
    def test_create_writes_initial_checkpoint(self, tmp_path):
        directory = str(tmp_path / "tenant")
        graph = small_graph()
        durability = WalDurability.create(directory, graph)
        assert is_tenant_directory(directory)
        assert load_graph_json(durability.checkpoint_path) == graph
        durability.close()

    def test_create_refuses_existing_state(self, tmp_path):
        directory = str(tmp_path / "tenant")
        WalDurability.create(directory, small_graph()).close()
        with pytest.raises(WalError):
            WalDurability.create(directory, small_graph())

    def test_checkpoint_every_validation(self, tmp_path):
        with pytest.raises(WalError):
            WalDurability(str(tmp_path / "t"), checkpoint_every=0)

    def test_journal_then_recover_replays_to_head(self, tmp_path):
        directory = str(tmp_path / "tenant")
        graph = small_graph()
        durability = WalDurability.create(directory, graph)
        head = graph
        for _ in range(3):
            delta = growth_delta(head)
            folded = MutableDataGraph(head, delta).materialize(name=head.name)
            durability.journal(delta, head.version, folded.version)
            head = folded
        durability.close()

        recovered, durability, report = WalDurability.recover(directory)
        assert recovered == head and recovered.version == head.version == 3
        assert report.entries_applied == 3 and report.entries_skipped == 0
        assert report.checkpoint_version == 0 and report.head_version == 3
        durability.close()

    def test_checkpoint_truncates_log(self, tmp_path):
        directory = str(tmp_path / "tenant")
        graph = small_graph()
        durability = WalDurability.create(directory, graph)
        delta = growth_delta(graph)
        head = MutableDataGraph(graph, delta).materialize(name=graph.name)
        durability.journal(delta, graph.version, head.version)
        summary = durability.checkpoint(head)
        assert summary["version"] == 1 and summary["log_entries_dropped"] == 1
        assert durability.log.size_bytes == 0
        durability.close()

        recovered, durability, report = WalDurability.recover(directory)
        assert recovered == head
        assert report.entries_applied == 0 and report.checkpoint_version == 1
        durability.close()

    def test_crash_between_checkpoint_write_and_truncate(self, tmp_path):
        # checkpoint landed but the log did not truncate: replay must
        # skip every entry the checkpoint already contains.
        directory = str(tmp_path / "tenant")
        graph = small_graph()
        durability = WalDurability.create(directory, graph)
        head = graph
        for _ in range(2):
            delta = growth_delta(head)
            folded = MutableDataGraph(head, delta).materialize(name=head.name)
            durability.journal(delta, head.version, folded.version)
            head = folded
        # the crash: checkpoint file written, truncate never ran
        save_graph_json(head, durability.checkpoint_path)
        durability.close()

        recovered, durability, report = WalDurability.recover(directory)
        assert recovered == head and recovered.version == 2
        assert report.entries_skipped == 2 and report.entries_applied == 0
        durability.close()

    def test_unknown_entry_kind_is_corruption(self, tmp_path):
        directory = str(tmp_path / "tenant")
        durability = WalDurability.create(directory, small_graph())
        durability.log.append({"kind": "mystery"})
        durability.close()
        with pytest.raises(WalError):
            WalDurability.recover(directory)

    def test_version_mismatch_is_corruption(self, tmp_path):
        directory = str(tmp_path / "tenant")
        graph = small_graph()
        durability = WalDurability.create(directory, graph)
        delta = growth_delta(graph)
        durability.journal(delta, graph.version, 7)  # lies about the outcome
        durability.close()
        with pytest.raises(WalError):
            WalDurability.recover(directory)

    def test_closed_hook_refuses_journal_and_checkpoint(self, tmp_path):
        durability = WalDurability.create(str(tmp_path / "tenant"), small_graph())
        durability.close()
        with pytest.raises(WalError):
            durability.journal(growth_delta(small_graph()), 0, 1)
        with pytest.raises(WalError):
            durability.checkpoint(small_graph())

    def test_counters_shape(self, tmp_path):
        durability = WalDurability.create(str(tmp_path / "tenant"), small_graph())
        counters = durability.counters()
        for key in (
            "journal_entries",
            "journal_bytes",
            "checkpoints",
            "checkpoint_failures",
            "entries_since_checkpoint",
            "last_checkpoint_version",
            "log_bytes",
            "fsync",
        ):
            assert key in counters
        assert counters["checkpoints"] == 1  # the initial one
        durability.close()


# ---------------------------------------------------------------------- #
# the store drives the hook
# ---------------------------------------------------------------------- #


class TestStoreDurability:
    def open_store(self, tmp_path, **kwargs) -> VersionedGraphStore:
        graph = small_graph()
        durability = WalDurability.create(
            str(tmp_path / "tenant"), graph, **kwargs
        )
        return VersionedGraphStore(graph, durability=durability)

    def test_sync_apply_journals_before_publish(self, tmp_path):
        store = self.open_store(tmp_path)
        report = store.apply(growth_delta(store.graph))
        assert report.new_version == 1
        counters = store.durability.counters()
        assert counters["journal_entries"] == 1
        assert counters["last_journaled_version"] == 1
        entries, _, _ = scan_log(store.durability.log.path)
        assert entries[0]["base_version"] == 0 and entries[0]["new_version"] == 1
        store.close()

    def test_async_apply_journals_too(self, tmp_path):
        store = self.open_store(tmp_path)
        future = store.apply_async(growth_delta(store.graph))
        report = future.result(timeout=30.0)
        assert report.new_version == 1
        assert store.durability.counters()["journal_entries"] == 1
        store.close()

    def test_journal_failure_aborts_fold(self, tmp_path):
        store = self.open_store(tmp_path)
        store.durability.close()  # further appends raise WalError
        with pytest.raises(WalError):
            store.apply(growth_delta(store.graph))
        assert store.head_version == 0  # nothing published
        store.close()

    def test_auto_checkpoint_bounds_log_growth(self, tmp_path):
        store = self.open_store(tmp_path, checkpoint_every=2)
        store.apply(growth_delta(store.graph))
        assert store.durability.counters()["entries_since_checkpoint"] == 1
        store.apply(growth_delta(store.graph))
        counters = store.durability.counters()
        assert counters["entries_since_checkpoint"] == 0
        assert counters["checkpoints"] == 2  # initial + auto
        assert counters["last_checkpoint_version"] == 2
        assert store.durability.log.size_bytes == 0
        store.close()

    def test_manual_checkpoint_and_gauges(self, tmp_path):
        store = self.open_store(tmp_path)
        store.apply(growth_delta(store.graph))
        summary = store.checkpoint()
        assert summary["version"] == 1 and summary["log_entries_dropped"] == 1
        store.close()

    def test_checkpoint_without_durability_raises(self):
        store = VersionedGraphStore(small_graph())
        with pytest.raises(StoreError):
            store.checkpoint()
        store.close()

    def test_total_pin_count_gauge(self):
        store = VersionedGraphStore(small_graph())
        assert store.total_pin_count == 0
        snapshot = store.pin()
        assert store.total_pin_count == 1
        snapshot.release()
        assert store.total_pin_count == 0
        store.close()


# ---------------------------------------------------------------------- #
# GraphDB.open_durable + crash points
# ---------------------------------------------------------------------- #


PAPER_DSL = (
    "node a A\nnode b B\nnode c C\n"
    "edge a -> b\nedge a -> c\nedge b => c"
)


class TestGraphDBDurable:
    def test_fresh_open_ingest_recover(self, tmp_path):
        directory = str(tmp_path / "tenant")
        graph = build_paper_graph()
        with GraphDB.open_durable(
            directory, name="paper", labels=graph.labels, edges=graph.edges()
        ) as db:
            assert db.last_recovery is None
            base = db.num_nodes
            db.ingest(labels=["B"], edges=[(0, base)])
            head = db.head_version
            expected = db.query(PAPER_DSL).occurrence_set()

        with GraphDB.open_durable(directory, name="paper") as db:
            assert db.head_version == head == 1
            report = db.last_recovery
            assert report is not None and report.entries_applied == 1
            assert "recovery" in db.stats()["durability"]
            # cross-engine agreement on the recovered graph
            for engine in ("GM", "JM", "TM"):
                assert db.query(PAPER_DSL, engine=engine).occurrence_set() == expected

    def test_facade_checkpoint_and_stats(self, tmp_path):
        directory = str(tmp_path / "tenant")
        with GraphDB.open_durable(directory, labels=["A"], edges=()) as db:
            db.ingest(labels=["B"], edges=[(0, 1)])
            stats = db.stats()
            assert stats["durability"]["journal_entries"] == 1
            summary = db.checkpoint()
            assert summary["version"] == 1
            assert db.stats()["durability"]["entries_since_checkpoint"] == 0

    def test_open_durable_on_plain_db_raises(self):
        with GraphDB.open(small_graph()) as db:
            with pytest.raises(StoreError):
                db.checkpoint()

    def test_durability_on_existing_store_rejected(self):
        store = VersionedGraphStore(small_graph())
        try:
            with pytest.raises(TypeError):
                GraphDB.open(store, durability=object())
        finally:
            store.close()


class TestCrashPoints:
    """The three kill windows of the write-ahead discipline."""

    def test_crash_between_journal_and_publish(self, tmp_path):
        # the delta reached the log but the store never published it:
        # recovery must fold it forward (it was acknowledged durable).
        directory = str(tmp_path / "tenant")
        db = GraphDB.open_durable(directory, labels=["A", "B"], edges=[(0, 1)])
        delta = db.delta()
        node = delta.add_node("B")
        delta.add_edge(0, node)
        expected = MutableDataGraph(db.graph, delta).materialize(name=db.graph.name)
        db.store.durability.journal(delta, db.head_version, db.head_version + 1)
        db.close()  # head still at version 0 — the "crash"

        with GraphDB.open_durable(directory) as recovered:
            assert recovered.head_version == 1
            assert recovered.graph == expected
            assert recovered.last_recovery.entries_applied == 1

    def test_crash_between_publish_and_checkpoint(self, tmp_path):
        directory = str(tmp_path / "tenant")
        db = GraphDB.open_durable(directory, labels=["A", "B"], edges=[(0, 1)])
        for _ in range(3):
            db.apply(growth_delta(db.graph))
        head, graph = db.head_version, db.graph
        db.close()  # no checkpoint ever ran

        with GraphDB.open_durable(directory) as recovered:
            assert recovered.head_version == head == 3
            assert recovered.graph == graph
            assert recovered.last_recovery.checkpoint_version == 0
            assert recovered.last_recovery.entries_applied == 3

    def test_crash_mid_checkpoint(self, tmp_path, monkeypatch):
        # the checkpoint write itself dies: the old checkpoint and the
        # full log must both survive, and recovery still reaches head.
        directory = str(tmp_path / "tenant")
        db = GraphDB.open_durable(directory, labels=["A", "B"], edges=[(0, 1)])
        db.apply(growth_delta(db.graph))
        head, graph = db.head_version, db.graph

        def torn_save(graph, path, delta=None):
            raise OSError("disk died mid-checkpoint")

        monkeypatch.setattr("repro.wal.durability.save_graph_json", torn_save)
        with pytest.raises(OSError):
            db.checkpoint()
        monkeypatch.undo()
        assert db.stats()["durability"]["checkpoint_failures"] == 1
        assert db.store.durability.log.size_bytes > 0  # log NOT truncated
        db.close()

        with GraphDB.open_durable(directory) as recovered:
            assert recovered.head_version == head
            assert recovered.graph == graph
            assert recovered.last_recovery.checkpoint_version == 0

    def test_torn_journal_tail_dropped_on_recovery(self, tmp_path):
        directory = str(tmp_path / "tenant")
        db = GraphDB.open_durable(directory, labels=["A", "B"], edges=[(0, 1)])
        db.apply(growth_delta(db.graph))
        head = db.head_version
        db.close()
        # crash mid-append: garbage half-frame at the tail
        log_path = os.path.join(directory, LOG_FILE)
        with open(log_path, "ab") as handle:
            handle.write(struct.pack(">I", 500) + b'{"kind"')

        with GraphDB.open_durable(directory) as recovered:
            assert recovered.head_version == head
            assert recovered.last_recovery.torn_bytes_dropped > 0
        # the repair truncated the file: a rescan sees no tear
        _, _, torn = scan_log(log_path)
        assert torn == 0


# ---------------------------------------------------------------------- #
# durable catalog
# ---------------------------------------------------------------------- #


class TestCatalogDurable:
    def test_create_recover_round_trip(self, tmp_path):
        data_dir = str(tmp_path / "data")
        graph = build_paper_graph()
        with GraphCatalog.open(data_dir) as catalog:
            catalog.create("paper", labels=graph.labels, edges=graph.edges())
            catalog.create("tiny", labels=["A", "B"], edges=[(0, 1)])
            paper = catalog.get("paper")
            base = paper.num_nodes
            paper.ingest(labels=["B"], edges=[(0, base)])
            versions = {
                name: catalog.get(name).head_version for name in catalog.names()
            }
            expected = paper.query(PAPER_DSL).occurrence_set()

        with GraphCatalog.open(data_dir) as catalog:
            assert set(catalog.names()) == {"paper", "tiny"}
            for name, version in versions.items():
                assert catalog.get(name).head_version == version
            assert catalog.get("paper").query(PAPER_DSL).occurrence_set() == expected

    def test_tenant_names_are_percent_encoded(self, tmp_path):
        data_dir = str(tmp_path / "data")
        name = "team/α graphs"
        with GraphCatalog.open(data_dir) as catalog:
            catalog.create(name, labels=["A"], edges=())
            storage = catalog._storage[name]
            assert os.sep not in os.path.basename(storage)
        with GraphCatalog.open(data_dir) as catalog:
            assert name in catalog

    def test_drop_keeps_storage_by_default(self, tmp_path):
        data_dir = str(tmp_path / "data")
        with GraphCatalog.open(data_dir) as catalog:
            catalog.create("t", labels=["A"], edges=())
            storage = catalog._storage["t"]
            catalog.drop("t")
            assert is_tenant_directory(storage)
        with GraphCatalog.open(data_dir) as catalog:
            assert "t" in catalog  # resurrected from disk

    def test_drop_delete_storage_removes_tenant(self, tmp_path):
        data_dir = str(tmp_path / "data")
        with GraphCatalog.open(data_dir) as catalog:
            catalog.create("t", labels=["A"], edges=())
            storage = catalog._storage["t"]
            catalog.drop("t", delete_storage=True)
            assert not os.path.exists(storage)
        with GraphCatalog.open(data_dir) as catalog:
            assert "t" not in catalog

    def test_drop_with_live_pin_refused(self, tmp_path):
        with GraphCatalog() as catalog:
            database = catalog.create("t", labels=["A", "B"], edges=[(0, 1)])
            snapshot = database.pin()
            assert database.store.total_pin_count == 1
            with pytest.raises(CatalogError, match="pinned"):
                catalog.drop("t")
            assert "t" in catalog  # refusal left the tenant registered
            snapshot.release()
            assert database.store.total_pin_count == 0
            catalog.drop("t")
            assert "t" not in catalog

    def test_drop_with_live_pin_forced(self, tmp_path):
        with GraphCatalog() as catalog:
            database = catalog.create("t", labels=["A", "B"], edges=[(0, 1)])
            database.pin()
            catalog.drop("t", force=True)
            assert "t" not in catalog
            with pytest.raises(StoreError):
                database.pin()  # the forced drop closed the store

    def test_durable_create_rejects_store_source(self, tmp_path):
        store = VersionedGraphStore(small_graph())
        try:
            with GraphCatalog.open(str(tmp_path / "data")) as catalog:
                with pytest.raises(CatalogError):
                    catalog.create("t", source=store)
        finally:
            store.close()

    def test_durable_create_refuses_existing_storage(self, tmp_path):
        data_dir = str(tmp_path / "data")
        with GraphCatalog.open(data_dir) as catalog:
            catalog.create("t", labels=["A"], edges=())
        catalog = GraphCatalog(data_dir=data_dir)
        try:
            with pytest.raises(CatalogError, match="already exists"):
                catalog.create("t", labels=["A"], edges=())
        finally:
            catalog.close()


# ---------------------------------------------------------------------- #
# the acceptance bar: SIGKILL a serving process, restart, compare
# ---------------------------------------------------------------------- #


CHILD_SERVER = textwrap.dedent(
    """
    import sys, time
    from repro.server import GraphServer

    server = GraphServer(data_dir=sys.argv[1])
    host, port = server.start()
    print(f"{host} {port}", flush=True)
    time.sleep(600)  # hold the server until the parent SIGKILLs us
    """
)


class TestServerCrashRecovery:
    def test_sigkill_restart_recovers_every_tenant(self, tmp_path):
        data_dir = str(tmp_path / "data")
        src_dir = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath(src_dir) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        child = subprocess.Popen(
            [sys.executable, "-c", CHILD_SERVER, data_dir],
            stdout=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            line = child.stdout.readline().strip()
            assert line, "child server never announced its address"
            host, port = line.split()
            graph = build_paper_graph()
            pre_crash = {}
            with GraphClient(host, int(port), timeout=60.0) as client:
                client.create_graph(
                    "paper", labels=graph.labels, edges=graph.edges()
                )
                base = client.num_nodes
                client.ingest(labels=["B"], edges=[(0, base)])
                client.create_graph("tiny", labels=["A", "B"], edges=[(0, 1)])
                client.ingest(labels=["B"], edges=[(0, 2)], graph="tiny")
                client.ingest(labels=["C"], edges=[(1, 3)], graph="tiny")
                # checkpoint one tenant mid-history: its recovery replays
                # only the post-checkpoint tail, the other replays all.
                client.checkpoint(graph="paper")
                client.ingest(labels=["C"], edges=[(base, base + 1)], graph="paper")
                for name in ("paper", "tiny"):
                    info = client.info(graph=name)
                    report = client.query(PAPER_DSL, graph=name)
                    pre_crash[name] = (
                        info["head_version"],
                        info["num_nodes"],
                        info["num_edges"],
                        report.occurrence_set(),
                    )
            os.kill(child.pid, signal.SIGKILL)
            child.wait(timeout=30.0)
        finally:
            if child.poll() is None:
                child.kill()
                child.wait(timeout=30.0)

        # restart "the process": a fresh server over the same data_dir
        with GraphServer(data_dir=data_dir) as server:
            with GraphClient(*server.address, timeout=60.0) as client:
                names = {info["name"] for info in client.graphs()}
                assert names == {"paper", "tiny"}
                for name, (version, nodes, edges, answer) in pre_crash.items():
                    info = client.info(graph=name)
                    assert info["head_version"] == version
                    assert info["num_nodes"] == nodes
                    assert info["num_edges"] == edges
                    report = client.query(PAPER_DSL, graph=name)
                    assert report.occurrence_set() == answer
                # durability survives the restart: new folds journal too
                stats = client.stats(graph="paper")
                assert stats["durability"]["recovery"]["head_version"] == (
                    pre_crash["paper"][0]
                )
                client.ingest(labels=["B"], edges=(), graph="paper")
                assert (
                    client.info(graph="paper")["head_version"]
                    == pre_crash["paper"][0] + 1
                )
