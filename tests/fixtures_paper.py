"""The paper's running example (Fig. 2) as an importable fixture module.

Test modules import the node-id constants and the expected answer from here
explicitly (``from fixtures_paper import A1, ...``) instead of from
``conftest`` — a ``conftest`` import resolves to whichever conftest pytest
put on ``sys.path`` first (the ``benchmarks/`` one when the rootdir spans
both directories), which broke collection of the seed suite.
"""

from __future__ import annotations

import sys
from pathlib import Path

# Make the package importable even when it has not been pip-installed.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.graph.digraph import DataGraph
from repro.query.pattern import EdgeType, PatternQuery

# Node ids of the paper-example data graph.
A0, A1, A2 = 0, 1, 2
B0, B1, B2, B3 = 3, 4, 5, 6
C0, C1, C2 = 7, 8, 9

PAPER_NODE_NAMES = {
    A0: "a0", A1: "a1", A2: "a2",
    B0: "b0", B1: "b1", B2: "b2", B3: "b3",
    C0: "c0", C1: "c1", C2: "c2",
}


def build_paper_graph() -> DataGraph:
    """The data graph of the paper's running example (Fig. 2(b)).

    Engineered so that:

    * F(A)={a1,a2}, B(A)={a0,a1,a2}, FB(A)={a1,a2}
    * F(B)={b0,b1,b2}, B(B)={b0,b2,b3}, FB(B)={b0,b2}
    * F(C)=B(C)=FB(C)={c0,c1,c2}
    * the answer of Q is {(a1,b0,c0), (a1,b0,c1), (a2,b2,c0), (a2,b2,c2)}
    * the refined RIG contains the redundant edge (b2, c1).
    """
    labels = ["A", "A", "A", "B", "B", "B", "B", "C", "C", "C"]
    edges = [
        (A1, B0), (A2, B2), (A0, B3),
        (A1, C0), (A1, C1), (A2, C0), (A2, C2),
        (B0, C0), (B0, C1),
        (B1, C0), (B1, C2),
        (B2, C0), (B2, C1), (B2, C2),
    ]
    return DataGraph(labels, edges, name="paper-example")


def build_paper_query() -> PatternQuery:
    """The hybrid query Q of Fig. 2(a): A->B, A->C direct; B=>C reachability."""
    return PatternQuery(
        labels=["A", "B", "C"],
        edges=[
            (0, 1, EdgeType.CHILD),
            (0, 2, EdgeType.CHILD),
            (1, 2, EdgeType.DESCENDANT),
        ],
        name="Q-paper",
    )


PAPER_ANSWER = frozenset(
    {
        (A1, B0, C0),
        (A1, B0, C1),
        (A2, B2, C0),
        (A2, B2, C2),
    }
)
