"""Tests for query transitive closure / reduction and structural classification."""

import pytest

from repro.baselines.bruteforce import bruteforce_homomorphisms
from repro.graph.generators import random_labeled_graph
from repro.query.classify import (
    QueryClass,
    classify_query,
    dag_decomposition,
    is_dag,
    is_undirected_clique,
    topological_order,
)
from repro.query.pattern import EdgeType, PatternEdge, PatternQuery
from repro.query.transitive import is_transitive_edge, transitive_closure, transitive_reduction


def make_query(edges, n=None, name="q"):
    n = n if n is not None else (max(max(e[0], e[1]) for e in edges) + 1)
    return PatternQuery([f"L{i % 3}" for i in range(n)], edges, name=name)


class TestTransitiveClosure:
    def test_paper_example(self):
        # Fig. 3: A -> B -> C with a transitive reachability edge (A, C).
        query = make_query([(0, 1, "child"), (1, 2, "child"), (0, 2, "descendant")])
        closure = transitive_closure(query)
        # The closure keeps the original edges; (0, 2) is already present.
        assert closure.num_edges == 3

    def test_closure_adds_implied_edges(self):
        query = make_query([(0, 1, "child"), (1, 2, "descendant")])
        closure = transitive_closure(query)
        assert closure.has_edge(0, 2)
        assert closure.edge(0, 2).is_descendant

    def test_closure_on_cycle(self):
        query = make_query([(0, 1, "child"), (1, 2, "child"), (2, 0, "child")])
        closure = transitive_closure(query)
        # Every ordered pair of distinct nodes is connected in the closure.
        assert closure.num_edges == 6


class TestTransitiveReduction:
    def test_removes_transitive_edge(self):
        query = make_query([(0, 1, "child"), (1, 2, "child"), (0, 2, "descendant")])
        assert is_transitive_edge(query, query.edge(0, 2))
        reduced = transitive_reduction(query)
        assert not reduced.has_edge(0, 2)
        assert reduced.num_edges == 2

    def test_keeps_direct_edges(self):
        # A direct edge is never redundant even when a longer path exists.
        query = make_query([(0, 1, "child"), (1, 2, "child"), (0, 2, "child")])
        reduced = transitive_reduction(query)
        assert reduced.num_edges == 3

    def test_keeps_needed_reachability_edge(self):
        query = make_query([(0, 1, "descendant"), (1, 2, "descendant")])
        reduced = transitive_reduction(query)
        assert reduced.num_edges == 2

    def test_chain_of_implied_edges(self):
        query = make_query(
            [
                (0, 1, "descendant"),
                (1, 2, "descendant"),
                (2, 3, "descendant"),
                (0, 2, "descendant"),
                (0, 3, "descendant"),
                (1, 3, "descendant"),
            ]
        )
        reduced = transitive_reduction(query)
        assert reduced.num_edges == 3
        assert reduced.has_edge(0, 1) and reduced.has_edge(1, 2) and reduced.has_edge(2, 3)

    def test_reduction_preserves_answer(self):
        """Equivalence check: same answer on a random graph (paper §3)."""
        graph = random_labeled_graph(30, 90, 3, seed=5)
        query = PatternQuery(
            ["L0", "L1", "L2"],
            [(0, 1, "child"), (1, 2, "descendant"), (0, 2, "descendant")],
            name="redundant",
        )
        reduced = transitive_reduction(query)
        assert reduced.num_edges == 2
        original_answer = set(bruteforce_homomorphisms(graph, query))
        reduced_answer = set(bruteforce_homomorphisms(graph, reduced))
        assert original_answer == reduced_answer

    def test_idempotent(self):
        query = make_query([(0, 1, "child"), (1, 2, "descendant"), (0, 2, "descendant")])
        once = transitive_reduction(query)
        twice = transitive_reduction(once)
        assert once == twice

    def test_no_redundancy_returns_same_object(self):
        query = make_query([(0, 1, "child"), (1, 2, "descendant")])
        assert transitive_reduction(query) is query


class TestClassification:
    def test_acyclic(self):
        assert classify_query(make_query([(0, 1, "child"), (1, 2, "child")])) is QueryClass.ACYCLIC

    def test_cyclic(self):
        query = make_query([(0, 1, "child"), (1, 2, "child"), (0, 2, "descendant"), (2, 3, "child")])
        assert classify_query(query) is QueryClass.CYCLIC

    def test_clique(self):
        query = make_query(
            [(0, 1, "child"), (0, 2, "child"), (0, 3, "child"),
             (1, 2, "child"), (1, 3, "child"), (2, 3, "child")]
        )
        assert classify_query(query) is QueryClass.CLIQUE
        assert is_undirected_clique(query)

    def test_combo(self):
        query = make_query(
            [(0, 1, "child"), (0, 2, "child"), (1, 2, "child"),
             (1, 3, "child"), (2, 3, "child"), (2, 4, "child"),
             (3, 4, "child"), (3, 5, "child"), (4, 5, "child")]
        )
        assert classify_query(query) is QueryClass.COMBO

    def test_single_node_acyclic(self):
        assert classify_query(PatternQuery(["A"], [])) is QueryClass.ACYCLIC


class TestDagStructure:
    def test_topological_order_dag(self):
        query = make_query([(0, 1, "child"), (1, 2, "child"), (0, 2, "child")])
        order = topological_order(query)
        assert order is not None
        assert order.index(0) < order.index(1) < order.index(2)
        assert is_dag(query)

    def test_topological_order_cycle(self):
        query = make_query([(0, 1, "child"), (1, 2, "child"), (2, 0, "child")])
        assert topological_order(query) is None
        assert not is_dag(query)

    def test_dag_decomposition_dag_input(self):
        query = make_query([(0, 1, "child"), (1, 2, "child")])
        dag_edges, back_edges = dag_decomposition(query)
        assert len(dag_edges) == 2
        assert back_edges == []

    def test_dag_decomposition_cycle(self):
        query = make_query([(0, 1, "child"), (1, 2, "child"), (2, 0, "descendant")])
        dag_edges, back_edges = dag_decomposition(query)
        assert len(dag_edges) + len(back_edges) == 3
        assert len(back_edges) >= 1
        # Removing the back edges leaves an acyclic query.
        residual = query.with_edges(dag_edges)
        assert is_dag(residual)

    def test_dag_decomposition_multiple_cycles(self):
        query = make_query(
            [(0, 1, "child"), (1, 0, "child"), (1, 2, "child"), (2, 1, "descendant")]
        )
        dag_edges, back_edges = dag_decomposition(query)
        residual = query.with_edges(dag_edges)
        assert is_dag(residual)
        assert len(back_edges) == 2
