"""Shared fixtures for the test suite.

The central fixture is the paper's running example (Fig. 2): the hybrid
query ``Q`` over nodes A, B, C and a data graph ``G`` engineered so that its
forward / backward / double simulations equal Table 1 of the paper and its
answer equals Fig. 2(c).
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Make the package importable even when it has not been pip-installed.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.graph.digraph import DataGraph
from repro.graph.generators import random_labeled_graph, random_dag
from repro.query.pattern import EdgeType, PatternQuery
from repro.simulation.context import MatchContext


# Node ids of the paper-example data graph.
A0, A1, A2 = 0, 1, 2
B0, B1, B2, B3 = 3, 4, 5, 6
C0, C1, C2 = 7, 8, 9

PAPER_NODE_NAMES = {
    A0: "a0", A1: "a1", A2: "a2",
    B0: "b0", B1: "b1", B2: "b2", B3: "b3",
    C0: "c0", C1: "c1", C2: "c2",
}


def build_paper_graph() -> DataGraph:
    """The data graph of the paper's running example (Fig. 2(b)).

    Engineered so that:

    * F(A)={a1,a2}, B(A)={a0,a1,a2}, FB(A)={a1,a2}
    * F(B)={b0,b1,b2}, B(B)={b0,b2,b3}, FB(B)={b0,b2}
    * F(C)=B(C)=FB(C)={c0,c1,c2}
    * the answer of Q is {(a1,b0,c0), (a1,b0,c1), (a2,b2,c0), (a2,b2,c2)}
    * the refined RIG contains the redundant edge (b2, c1).
    """
    labels = ["A", "A", "A", "B", "B", "B", "B", "C", "C", "C"]
    edges = [
        (A1, B0), (A2, B2), (A0, B3),
        (A1, C0), (A1, C1), (A2, C0), (A2, C2),
        (B0, C0), (B0, C1),
        (B1, C0), (B1, C2),
        (B2, C0), (B2, C1), (B2, C2),
    ]
    return DataGraph(labels, edges, name="paper-example")


def build_paper_query() -> PatternQuery:
    """The hybrid query Q of Fig. 2(a): A->B, A->C direct; B=>C reachability."""
    return PatternQuery(
        labels=["A", "B", "C"],
        edges=[
            (0, 1, EdgeType.CHILD),
            (0, 2, EdgeType.CHILD),
            (1, 2, EdgeType.DESCENDANT),
        ],
        name="Q-paper",
    )


PAPER_ANSWER = frozenset(
    {
        (A1, B0, C0),
        (A1, B0, C1),
        (A2, B2, C0),
        (A2, B2, C2),
    }
)


@pytest.fixture(scope="session")
def paper_graph() -> DataGraph:
    """Session-scoped paper-example data graph."""
    return build_paper_graph()


@pytest.fixture(scope="session")
def paper_query() -> PatternQuery:
    """Session-scoped paper-example query."""
    return build_paper_query()


@pytest.fixture(scope="session")
def paper_answer() -> frozenset:
    """The expected answer of the paper-example query."""
    return PAPER_ANSWER


@pytest.fixture(scope="session")
def paper_context(paper_graph) -> MatchContext:
    """MatchContext (BFL reachability) over the paper-example graph."""
    return MatchContext(paper_graph, reachability_kind="bfl")


@pytest.fixture(scope="session")
def small_random_graph() -> DataGraph:
    """A small random labelled graph shared by several module tests."""
    return random_labeled_graph(num_nodes=60, num_edges=180, num_labels=4, seed=3, name="small")


@pytest.fixture(scope="session")
def small_dag() -> DataGraph:
    """A small random dag shared by reachability tests."""
    return random_dag(num_nodes=50, num_edges=120, num_labels=4, seed=5, name="small-dag")


@pytest.fixture(scope="session")
def small_context(small_random_graph) -> MatchContext:
    """MatchContext over the small random graph."""
    return MatchContext(small_random_graph, reachability_kind="bfl")
