"""Shared fixtures for the test suite.

The central fixture is the paper's running example (Fig. 2): the hybrid
query ``Q`` over nodes A, B, C and a data graph ``G`` engineered so that its
forward / backward / double simulations equal Table 1 of the paper and its
answer equals Fig. 2(c).  The constants and builders live in
``fixtures_paper`` so that test modules can import them without relying on
``conftest`` being importable by name (which depends on the pytest rootdir).
"""

from __future__ import annotations

import pytest

from fixtures_paper import (  # noqa: F401  (re-exported for older imports)
    A0, A1, A2, B0, B1, B2, B3, C0, C1, C2,
    PAPER_ANSWER,
    PAPER_NODE_NAMES,
    build_paper_graph,
    build_paper_query,
)
from repro.graph.digraph import DataGraph
from repro.graph.generators import random_labeled_graph, random_dag
from repro.simulation.context import MatchContext
from repro.query.pattern import PatternQuery


@pytest.fixture(scope="session")
def paper_graph() -> DataGraph:
    """Session-scoped paper-example data graph."""
    return build_paper_graph()


@pytest.fixture(scope="session")
def paper_query() -> PatternQuery:
    """Session-scoped paper-example query."""
    return build_paper_query()


@pytest.fixture(scope="session")
def paper_answer() -> frozenset:
    """The expected answer of the paper-example query."""
    return PAPER_ANSWER


@pytest.fixture(scope="session")
def paper_context(paper_graph) -> MatchContext:
    """MatchContext (BFL reachability) over the paper-example graph."""
    return MatchContext(paper_graph, reachability_kind="bfl")


@pytest.fixture(scope="session")
def small_random_graph() -> DataGraph:
    """A small random labelled graph shared by several module tests."""
    return random_labeled_graph(num_nodes=60, num_edges=180, num_labels=4, seed=3, name="small")


@pytest.fixture(scope="session")
def small_dag() -> DataGraph:
    """A small random dag shared by reachability tests."""
    return random_dag(num_nodes=50, num_edges=120, num_labels=4, seed=5, name="small-dag")


@pytest.fixture(scope="session")
def small_context(small_random_graph) -> MatchContext:
    """MatchContext over the small random graph."""
    return MatchContext(small_random_graph, reachability_kind="bfl")
