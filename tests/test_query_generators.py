"""Tests for the query-template library and random query generators."""

import pytest

from repro.exceptions import QueryError
from repro.graph.generators import random_labeled_graph
from repro.query.classify import QueryClass, classify_query
from repro.query.generators import (
    QUERY_TEMPLATES,
    TEMPLATES_BY_CLASS,
    all_template_queries,
    instantiate_template,
    random_pattern_query,
    template_query,
    to_child_only,
    to_descendant_only,
    to_hybrid,
)
from repro.query.pattern import EdgeType


@pytest.fixture(scope="module")
def graph():
    return random_labeled_graph(120, 400, 6, seed=13, name="gen-test")


class TestTemplates:
    def test_twenty_templates(self):
        assert len(QUERY_TEMPLATES) == 20
        assert QUERY_TEMPLATES[0] == "HQ0"
        assert QUERY_TEMPLATES[-1] == "HQ19"

    def test_every_template_connected(self):
        for name in QUERY_TEMPLATES:
            assert template_query(name).is_connected(), name

    def test_every_template_hybrid(self):
        for name in QUERY_TEMPLATES:
            query = template_query(name)
            assert query.child_edges(), name
            assert query.descendant_edges(), name

    def test_class_membership_of_representatives(self):
        assert classify_query(template_query("HQ0")) is QueryClass.ACYCLIC
        assert classify_query(template_query("HQ2")) is QueryClass.ACYCLIC
        assert classify_query(template_query("HQ8")) is QueryClass.CYCLIC
        assert classify_query(template_query("HQ17")) is QueryClass.CYCLIC
        assert classify_query(template_query("HQ11")) is QueryClass.CLIQUE
        assert classify_query(template_query("HQ19")) is QueryClass.CLIQUE
        assert classify_query(template_query("HQ14")) is QueryClass.COMBO
        assert classify_query(template_query("HQ16")) is QueryClass.COMBO

    def test_hq19_is_seven_clique(self):
        query = template_query("HQ19")
        assert query.num_nodes == 7
        assert query.num_edges == 21

    def test_templates_by_class_covers_all(self):
        grouped = [name for names in TEMPLATES_BY_CLASS.values() for name in names]
        assert sorted(grouped) == sorted(QUERY_TEMPLATES)
        assert len(TEMPLATES_BY_CLASS[QueryClass.CLIQUE]) == 3

    def test_unknown_template(self):
        with pytest.raises(QueryError):
            template_query("HQ99")


class TestConversions:
    def test_to_child_only(self):
        converted = to_child_only(template_query("HQ3"))
        assert all(edge.is_child for edge in converted.edges())
        assert converted.name == "CQ3"

    def test_to_descendant_only(self):
        converted = to_descendant_only(template_query("HQ3"))
        assert all(edge.is_descendant for edge in converted.edges())
        assert converted.name == "DQ3"

    def test_to_hybrid_probability_extremes(self):
        base = to_child_only(template_query("HQ3"))
        all_descendant = to_hybrid(base, probability=1.0, seed=1)
        assert all(edge.is_descendant for edge in all_descendant.edges())
        all_child = to_hybrid(base, probability=0.0, seed=1)
        assert all(edge.is_child for edge in all_child.edges())

    def test_conversion_preserves_structure(self):
        base = template_query("HQ10")
        converted = to_descendant_only(base)
        assert {e.endpoints() for e in converted.edges()} == {e.endpoints() for e in base.edges()}


class TestInstantiation:
    def test_labels_from_graph(self, graph):
        query = instantiate_template("HQ5", graph, seed=3)
        alphabet = set(graph.label_alphabet())
        assert all(label in alphabet for label in query.labels)

    def test_deterministic(self, graph):
        assert instantiate_template("HQ5", graph, seed=3) == instantiate_template("HQ5", graph, seed=3)

    def test_unbiased_sampling(self, graph):
        query = instantiate_template("HQ5", graph, seed=3, bias_frequent_labels=False)
        assert all(label in set(graph.label_alphabet()) for label in query.labels)

    def test_instantiate_on_unlabelled_graph(self):
        from repro.graph.digraph import DataGraph

        with pytest.raises(QueryError):
            instantiate_template("HQ0", DataGraph([], []), seed=1)

    def test_all_template_queries_kinds(self, graph):
        queries = all_template_queries(graph, kinds=("H", "C", "D"))
        assert len(queries) == 60
        assert all(edge.is_child for edge in queries["CQ7"].edges())
        assert all(edge.is_descendant for edge in queries["DQ7"].edges())
        with pytest.raises(QueryError):
            all_template_queries(graph, kinds=("X",))


class TestRandomQueries:
    def test_connected_and_sized(self, graph):
        for num_nodes in (4, 8, 12):
            query = random_pattern_query(graph, num_nodes, seed=7)
            assert query.num_nodes == num_nodes
            assert query.is_connected()

    def test_dense_vs_sparse_edge_counts(self, graph):
        dense = random_pattern_query(graph, 10, seed=5, dense=True)
        sparse = random_pattern_query(graph, 10, seed=5, dense=False)
        assert dense.num_edges > sparse.num_edges

    def test_descendant_probability(self, graph):
        all_child = random_pattern_query(graph, 8, seed=4, descendant_probability=0.0)
        assert all(edge.is_child for edge in all_child.edges())
        all_descendant = random_pattern_query(graph, 8, seed=4, descendant_probability=1.0)
        assert all(edge.is_descendant for edge in all_descendant.edges())

    def test_deterministic(self, graph):
        assert random_pattern_query(graph, 6, seed=9) == random_pattern_query(graph, 6, seed=9)

    def test_too_small(self, graph):
        with pytest.raises(QueryError):
            random_pattern_query(graph, 1, seed=1)

    def test_custom_name(self, graph):
        assert random_pattern_query(graph, 5, seed=2, name="mine").name == "mine"
