"""Tests for the QuerySession cached-index batch execution layer."""

import pytest

from fixtures_paper import PAPER_ANSWER
from repro.bench.harness import make_matcher, run_workload
from repro.engines.base import Engine
from repro.engines.binary_join import BinaryJoinEngine
from repro.engines.relational import RelationalEngine
from repro.engines.treedecomp import TreeDecompEngine
from repro.engines.wcoj import WCOJEngine
from repro.graph.generators import random_labeled_graph
from repro.matching.gm import GMVariant, GraphMatcher
from repro.matching.result import Budget, MatchStatus
from repro.query.generators import random_pattern_query, to_child_only
from repro.session import BatchReport, QuerySession, percentile
from repro.session.batch import QueryOutcome

ENGINE_CLASSES = {
    "Neo4j": BinaryJoinEngine,
    "EH": RelationalEngine,
    "GF": WCOJEngine,
    "RM": TreeDecompEngine,
}


@pytest.fixture()
def session(paper_graph) -> QuerySession:
    return QuerySession(paper_graph)


class TestCachedResultsIdentical:
    """(a) cached-index results equal from-scratch results on the Fig. 2 fixture."""

    def test_gm_answer_matches_paper(self, session, paper_query):
        report = session.query(paper_query)
        assert report.occurrence_set() == PAPER_ANSWER

    def test_gm_equals_standalone(self, session, paper_graph, paper_query):
        standalone = GraphMatcher(paper_graph).match(paper_query)
        via_session = session.query(paper_query)
        assert via_session.occurrence_set() == standalone.occurrence_set()

    @pytest.mark.parametrize("name", ["GM-S", "GM-F", "GM-NR", "GM-RI", "GM-BJ"])
    def test_gm_variants_equal_standalone(self, session, paper_query, name):
        assert session.query(paper_query, engine=name).occurrence_set() == PAPER_ANSWER

    @pytest.mark.parametrize("name", sorted(ENGINE_CLASSES))
    def test_engines_equal_standalone(self, session, paper_graph, paper_query, name):
        standalone = ENGINE_CLASSES[name](paper_graph).match(paper_query)
        via_session = session.query(paper_query, engine=name)
        assert via_session.occurrence_set() == standalone.report.occurrence_set()

    @pytest.mark.parametrize("name", ["JM", "TM"])
    def test_baselines_equal_paper_answer(self, session, paper_query, name):
        assert session.query(paper_query, engine=name).occurrence_set() == PAPER_ANSWER


class TestCacheReuse:
    """(b) the second query on a session triggers zero index rebuilds."""

    def test_second_query_rebuilds_nothing(self, session, paper_query):
        first = session.query(paper_query)
        assert first.extra["rig_cached"] is False
        misses_after_first = session.stats.total_misses
        hits_after_first = session.stats.total_hits

        second = session.query(paper_query)
        assert second.extra["rig_cached"] is True
        assert second.occurrence_set() == first.occurrence_set()
        # No artifact was rebuilt; every access was a cache hit.
        assert session.stats.total_misses == misses_after_first
        assert session.stats.total_hits > hits_after_first

    def test_reachability_index_built_once(self, session, paper_query):
        session.query(paper_query)
        session.query(paper_query, engine="JM")
        session.query(paper_query, engine="TM")
        assert session.stats.misses("reachability") == 1
        assert session.stats.hits("reachability") >= 2
        assert session.context.reachability is session.reachability

    def test_rig_counters(self, session, paper_query):
        session.query(paper_query)
        assert session.stats.misses("rig") == 1
        assert session.stats.hits("rig") == 0
        session.query(paper_query)
        session.query(paper_query)
        assert session.stats.misses("rig") == 1
        assert session.stats.hits("rig") == 2
        assert session.cached_rig(paper_query, GMVariant.GM) is not None

    def test_engines_share_expanded_graph(self, session, paper_query):
        session.query(paper_query, engine="Neo4j")
        session.query(paper_query, engine="RM")
        neo = session.matcher("Neo4j")
        rm = session.matcher("RM")
        assert neo._expanded_graph is rm._expanded_graph
        assert session.stats.misses("expanded_graph") == 1
        assert session.stats.misses("closure") == 1

    def test_matcher_instance_cached(self, session, paper_query):
        assert session.matcher("GM") is session.matcher("GM")
        # Only the build is counted; lookups are not an interesting signal.
        assert session.stats.misses("matcher") == 1
        assert session.stats.hits("matcher") == 0

    def test_bitmap_artifacts_cached(self, session, paper_graph):
        bitmaps = session.label_bitmaps
        assert session.label_bitmaps is bitmaps
        assert set(bitmaps) == set(paper_graph.label_alphabet())
        assert list(session.label_bitmap("A")) == list(paper_graph.inverted_list("A"))
        assert len(session.label_bitmap("missing")) == 0
        universe = session.bitmap_universe
        assert len(universe) == paper_graph.num_nodes
        assert session.bitmap_universe is universe
        # Distinct artifacts, distinct counters: one build + one reuse each.
        assert session.stats.misses("bitmaps") == 1
        assert session.stats.misses("universe") == 1
        assert session.stats.hits("bitmaps") >= 1
        assert session.stats.hits("universe") == 1

    def test_variants_do_not_share_rig_caches(self, session, paper_query):
        full = session.query(paper_query, engine="GM")
        no_filter = session.query(paper_query, engine="GM-F")
        assert full.extra["rig_cached"] is False
        assert no_filter.extra["rig_cached"] is False
        assert full.occurrence_set() == no_filter.occurrence_set()

    def test_clear_drops_artifacts(self, session, paper_query):
        session.query(paper_query)
        session.clear()
        # clear() resets the counters with the artifacts, so hit-rate math
        # over a reused session stays truthful.
        assert session.stats.total_misses == 0
        assert session.stats.total_hits == 0
        session.query(paper_query)
        # The artifact was really dropped: the query rebuilt it (a miss on a
        # fresh counter), rather than silently reusing a stale instance.
        assert session.stats.misses("reachability") == 1

    def test_unknown_matcher_raises(self, session):
        with pytest.raises(KeyError):
            session.matcher("nope")


class TestRunBatch:
    """(c) parallel run_batch returns the same answers as serial execution."""

    @pytest.fixture(scope="class")
    def workload_graph(self):
        return random_labeled_graph(num_nodes=80, num_edges=240, num_labels=4, seed=11)

    @pytest.fixture(scope="class")
    def workload(self, workload_graph):
        queries = {}
        for seed in range(6):
            query = random_pattern_query(workload_graph, 4, seed=seed)
            queries[f"H{seed}"] = query
            queries[f"C{seed}"] = to_child_only(query, name=f"C{seed}")
        return queries

    def test_parallel_equals_serial(self, workload_graph, workload):
        serial = QuerySession(workload_graph).run_batch(workload, workers=1)
        parallel = QuerySession(workload_graph).run_batch(workload, workers=4)
        assert serial.answers() == parallel.answers()
        assert [outcome.name for outcome in serial.outcomes] == [
            outcome.name for outcome in parallel.outcomes
        ]
        assert parallel.workers == 4

    def test_parallel_on_one_session_is_stable(self, workload_graph, workload):
        session = QuerySession(workload_graph)
        first = session.run_batch(workload, workers=4)
        second = session.run_batch(workload, workers=4)
        assert first.answers() == second.answers()
        # The second batch is fully cache-served: no builds at all.
        assert not second.cache_misses

    def test_batch_aggregates(self, session, paper_query):
        report = session.run_batch({"a": paper_query, "b": paper_query, "c": paper_query})
        assert isinstance(report, BatchReport)
        assert report.num_queries == 3
        assert report.solved_count == 3
        assert report.total_matches == 3 * len(PAPER_ANSWER)
        assert report.wall_seconds > 0
        assert report.throughput_qps > 0
        assert 0 < report.p50 <= report.p90 <= report.p99
        assert report.outcome_for("a") is not None
        assert report.outcome_for("zzz") is None
        assert "latency" in report.summary()

    def test_batch_accepts_query_sequence(self, session, paper_query):
        report = session.run_batch([paper_query])
        assert report.num_queries == 1
        assert report.outcomes[0].name == paper_query.name
        assert report.outcomes[0].solved

    def test_batch_respects_budget(self, session, paper_query):
        report = session.run_batch(
            {"capped": paper_query}, budget=Budget(max_matches=1)
        )
        outcome = report.outcomes[0]
        assert outcome.num_matches == 1
        assert outcome.status == MatchStatus.MATCH_LIMIT.value

    def test_batch_engines(self, session, paper_query):
        for name in sorted(ENGINE_CLASSES):
            report = session.run_batch({"q": paper_query}, engine=name)
            assert report.engine == name
            assert report.outcomes[0].solved

    def test_keep_occurrences_false(self, session, paper_query):
        report = session.run_batch({"q": paper_query}, keep_occurrences=False)
        assert report.outcomes[0].occurrences == ()
        assert report.outcomes[0].num_matches == len(PAPER_ANSWER)


class TestBatchHelpers:
    def test_percentile_nearest_rank(self):
        samples = [0.1, 0.2, 0.3, 0.4]
        assert percentile(samples, 0.5) == 0.2
        assert percentile(samples, 1.0) == 0.4
        assert percentile([], 0.5) == 0.0

    def test_outcome_solved(self):
        assert QueryOutcome("q", 0.0, 1, "ok").solved
        assert QueryOutcome("q", 0.0, 1, "match_limit").solved
        assert not QueryOutcome("q", 0.0, 0, "timeout").solved


class TestHarnessIntegration:
    def test_make_matcher_uses_session(self, paper_graph):
        session = QuerySession(paper_graph)
        budget = Budget()
        first = make_matcher("GM", paper_graph, session.context, budget, session=session)
        second = make_matcher("GM", paper_graph, session.context, budget, session=session)
        assert first is second
        assert isinstance(
            make_matcher("EH", paper_graph, session.context, budget, session=session),
            Engine,
        )

    def test_run_workload_with_session(self, paper_graph, paper_query):
        session = QuerySession(paper_graph)
        result = run_workload(
            paper_graph, {"Q": paper_query}, ("GM", "JM"), session=session
        )
        assert result.solved_count("GM") == 1
        gm_run = result.run_for("GM", paper_query.name)
        jm_run = result.run_for("JM", paper_query.name)
        assert gm_run.matches == jm_run.matches == len(PAPER_ANSWER)
        assert session.stats.misses("reachability") == 1

    def test_run_workload_rejects_foreign_session(self, paper_graph, small_random_graph, paper_query):
        session = QuerySession(small_random_graph)
        with pytest.raises(ValueError):
            run_workload(paper_graph, {"Q": paper_query}, ("GM",), session=session)
