"""Tests for the runtime index graph structure and BuildRIG."""

import pytest

from repro.exceptions import MatchingError
from repro.query.pattern import PatternQuery
from repro.rig.build import RIGOptions, build_match_rig, build_rig
from repro.rig.graph import RuntimeIndexGraph
from repro.rig.stats import rig_statistics
from repro.simulation.context import ChildCheckMethod, MatchContext

from fixtures_paper import A0, A1, A2, B0, B1, B2, B3, C0, C1, C2


class TestRuntimeIndexGraphStructure:
    @pytest.fixture()
    def rig(self, paper_query):
        rig = RuntimeIndexGraph(paper_query)
        rig.set_candidates(0, [A1, A2])
        rig.set_candidates(1, [B0, B2])
        rig.set_candidates(2, [C0, C1, C2])
        edge_ab = paper_query.edge(0, 1)
        edge_bc = paper_query.edge(1, 2)
        rig.add_edge_candidates(edge_ab, A1, [B0])
        rig.add_edge_candidates(edge_ab, A2, [B2])
        rig.add_edge_candidates(edge_bc, B0, [C0, C1])
        rig.add_edge_candidates(edge_bc, B2, [C0, C1, C2])
        return rig

    def test_candidate_access(self, rig):
        assert set(rig.candidates(0)) == {A1, A2}
        assert rig.candidate_count(2) == 3

    def test_forward_backward_adjacency(self, rig):
        assert set(rig.forward_adjacency(0, 1, A1)) == {B0}
        assert set(rig.backward_adjacency(0, 1, B2)) == {A2}
        assert set(rig.forward_adjacency(1, 2, B2)) == {C0, C1, C2}
        assert set(rig.forward_adjacency(0, 1, A0)) == set()

    def test_edge_candidate_count(self, rig):
        assert rig.edge_candidate_count(0, 1) == 2
        assert rig.edge_candidate_count(1, 2) == 5

    def test_edge_candidates_iteration(self, rig):
        assert set(rig.edge_candidates(0, 1)) == {(A1, B0), (A2, B2)}

    def test_size_measures(self, rig):
        assert rig.num_rig_nodes() == 7
        assert rig.num_rig_edges() == 7
        assert rig.size() == 14
        assert not rig.is_empty()

    def test_add_edge_candidates_merges(self, rig, paper_query):
        edge_ab = paper_query.edge(0, 1)
        rig.add_edge_candidates(edge_ab, A1, [B2])
        assert set(rig.forward_adjacency(0, 1, A1)) == {B0, B2}

    def test_add_empty_heads_is_noop(self, rig, paper_query):
        before = rig.num_rig_edges()
        rig.add_edge_candidates(paper_query.edge(0, 1), A1, [])
        assert rig.num_rig_edges() == before

    def test_unknown_set_kind(self, paper_query):
        with pytest.raises(MatchingError):
            RuntimeIndexGraph(paper_query, set_kind="bogus")

    def test_roaring_set_kind(self, paper_query):
        rig = RuntimeIndexGraph(paper_query, set_kind="roaring")
        rig.set_candidates(0, [A1, A2])
        assert A1 in rig.candidates(0)

    def test_prune_unmatched_candidates(self, paper_query):
        rig = RuntimeIndexGraph(paper_query)
        rig.set_candidates(0, [A1])
        rig.set_candidates(1, [B0, B1])  # B1 gets no adjacency
        rig.set_candidates(2, [C0])
        rig.add_edge_candidates(paper_query.edge(0, 1), A1, [B0])
        rig.add_edge_candidates(paper_query.edge(0, 2), A1, [C0])
        rig.add_edge_candidates(paper_query.edge(1, 2), B0, [C0])
        removed = rig.prune_unmatched_candidates()
        assert removed == 1
        assert set(rig.candidates(1)) == {B0}


class TestBuildRIG:
    def test_refined_rig_matches_paper(self, paper_context, paper_query):
        """The refined RIG of Fig. 2(e): FB candidate sets, including (b2, c1)."""
        report = build_rig(paper_context, paper_query)
        rig = report.rig
        assert set(rig.candidates(0)) == {A1, A2}
        assert set(rig.candidates(1)) == {B0, B2}
        assert set(rig.candidates(2)) == {C0, C1, C2}
        # The redundant edge (b2, c1) survives double simulation (paper §4.5).
        assert C1 in set(rig.forward_adjacency(1, 2, B2))
        # Edge candidates of (A, B) are exactly the occurrence set.
        assert set(rig.edge_candidates(0, 1)) == {(A1, B0), (A2, B2)}

    def test_match_rig_is_larger(self, paper_context, paper_query):
        refined = build_rig(paper_context, paper_query).rig
        match_rig = build_match_rig(paper_context, paper_query).rig
        assert match_rig.num_rig_nodes() >= refined.num_rig_nodes()
        assert match_rig.num_rig_edges() >= refined.num_rig_edges()
        assert set(match_rig.candidates(1)) == {B0, B1, B2, B3}

    def test_prefilter_mode_between_match_and_refined(self, paper_context, paper_query):
        refined = build_rig(paper_context, paper_query).rig
        prefilter_only = build_rig(
            paper_context, paper_query, RIGOptions(filter_mode="prefilter")
        ).rig
        match_rig = build_match_rig(paper_context, paper_query).rig
        assert refined.num_rig_nodes() <= prefilter_only.num_rig_nodes() <= match_rig.num_rig_nodes()

    def test_unknown_filter_mode(self, paper_context, paper_query):
        with pytest.raises(ValueError):
            build_rig(paper_context, paper_query, RIGOptions(filter_mode="bogus"))

    def test_report_timings(self, paper_context, paper_query):
        report = build_rig(paper_context, paper_query)
        assert report.select_seconds >= 0.0
        assert report.expand_seconds >= 0.0
        assert report.total_seconds == pytest.approx(report.select_seconds + report.expand_seconds)
        assert report.simulation is not None
        assert report.candidates_after_selection >= report.rig.num_rig_nodes()

    def test_empty_rig_short_circuits(self, paper_context):
        query = PatternQuery(["Z", "A"], [(0, 1, "child")])
        report = build_rig(paper_context, query)
        assert report.rig.is_empty()
        assert report.rig.num_rig_edges() == 0

    def test_child_check_methods_build_same_rig(self, paper_context, paper_query):
        reference = build_rig(paper_context, paper_query).rig
        for method in ChildCheckMethod:
            options = RIGOptions(child_check=method)
            rig = build_rig(paper_context, paper_query, options).rig
            assert set(rig.edge_candidates(0, 1)) == set(reference.edge_candidates(0, 1))
            assert set(rig.edge_candidates(1, 2)) == set(reference.edge_candidates(1, 2))

    def test_basic_simulation_algorithm_option(self, paper_context, paper_query):
        options = RIGOptions(simulation_algorithm="basic")
        rig = build_rig(paper_context, paper_query, options).rig
        assert set(rig.candidates(1)) == {B0, B2}

    def test_roaring_rig(self, paper_context, paper_query):
        options = RIGOptions(set_kind="roaring")
        rig = build_rig(paper_context, paper_query, options).rig
        assert set(rig.candidates(0)) == {A1, A2}

    def test_bfs_expansion_threshold(self, paper_context, paper_query):
        # Force the multi-source BFS path for descendant expansion.
        options = RIGOptions(bfs_expansion_threshold=0)
        rig = build_rig(paper_context, paper_query, options).rig
        reference = build_rig(paper_context, paper_query).rig
        assert set(rig.edge_candidates(1, 2)) == set(reference.edge_candidates(1, 2))


class TestRIGStatistics:
    def test_statistics(self, paper_context, paper_graph, paper_query):
        rig = build_rig(paper_context, paper_query).rig
        stats = rig_statistics(rig, paper_graph)
        assert stats.rig_nodes == rig.num_rig_nodes()
        assert stats.rig_edges == rig.num_rig_edges()
        assert stats.rig_size == stats.rig_nodes + stats.rig_edges
        assert stats.graph_size == paper_graph.num_nodes + paper_graph.num_edges
        assert 0.0 < stats.size_ratio < 2.0
        assert stats.ratio_percent() == pytest.approx(100 * stats.size_ratio)
        assert stats.per_query_node[0] == 2

    def test_rig_much_smaller_than_match_rig_on_random_graph(self, small_context, small_random_graph):
        from repro.query.generators import random_pattern_query

        query = random_pattern_query(small_random_graph, 4, seed=2)
        refined = build_rig(small_context, query).rig
        match_rig = build_match_rig(small_context, query).rig
        assert refined.size() <= match_rig.size()
