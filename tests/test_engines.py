"""Tests for the comparator query engines (Neo4j / EH / GF / RM stand-ins)."""

import pytest

from repro.baselines.bruteforce import bruteforce_homomorphisms
from repro.engines.base import expand_descendant_edges
from repro.engines.binary_join import BinaryJoinEngine
from repro.engines.relational import RelationalEngine
from repro.engines.treedecomp import TreeDecompEngine
from repro.engines.wcoj import WCOJEngine, build_catalog
from repro.exceptions import EngineError, MemoryBudgetExceeded
from repro.matching.result import Budget, MatchStatus
from repro.query.generators import random_pattern_query, to_child_only
from repro.query.pattern import PatternQuery

ENGINE_CLASSES = [BinaryJoinEngine, RelationalEngine, WCOJEngine, TreeDecompEngine]


@pytest.fixture(scope="module")
def child_query():
    return PatternQuery(
        ["A", "B", "C"],
        [(0, 1, "child"), (0, 2, "child"), (1, 2, "child")],
        name="CQ-triangle",
    )


@pytest.mark.parametrize("engine_class", ENGINE_CLASSES)
class TestEnginesOnChildQueries:
    def test_child_query_matches_bruteforce(self, paper_graph, child_query, engine_class):
        engine = engine_class(paper_graph)
        result = engine.match(child_query)
        expected = frozenset(bruteforce_homomorphisms(paper_graph, child_query))
        assert result.report.occurrence_set() == expected
        assert result.report.algorithm == engine.name

    def test_child_only_paper_query(self, paper_graph, paper_query, engine_class):
        query = to_child_only(paper_query, name="CQ-paper")
        expected = frozenset(bruteforce_homomorphisms(paper_graph, query))
        result = engine_class(paper_graph).match(query)
        assert result.report.occurrence_set() == expected

    def test_random_child_queries(self, small_random_graph, engine_class):
        for seed in (1, 2, 3):
            query = to_child_only(random_pattern_query(small_random_graph, 4, seed=seed))
            expected = frozenset(bruteforce_homomorphisms(small_random_graph, query))
            result = engine_class(small_random_graph).match(query)
            assert result.report.occurrence_set() == expected, seed

    def test_match_cap(self, paper_graph, engine_class):
        query = PatternQuery(["A", "B"], [(0, 1, "child")], name="edge")
        result = engine_class(paper_graph, budget=Budget(max_matches=1)).match(query)
        assert result.report.num_matches == 1
        assert result.report.status is MatchStatus.MATCH_LIMIT

    def test_precompute_seconds_nonnegative(self, paper_graph, engine_class):
        engine = engine_class(paper_graph)
        assert engine.precompute_seconds >= 0.0


class TestDescendantHandling:
    def test_expand_descendant_edges(self, paper_graph):
        expanded, seconds = expand_descendant_edges(paper_graph)
        assert seconds >= 0.0
        # a1 reaches c0 through b0, so the closure adds the edge (a1, c0)... it
        # already exists; check a genuinely new closure edge instead: a1 -> c1
        # exists; a0 -> b3 exists; a0 reaches b3 only.  Use a2 => c1 via b2.
        assert expanded.has_edge(2, 8)  # a2 reaches c1 through b2
        assert expanded.num_edges >= paper_graph.num_edges

    def test_closure_mode_answers_hybrid_query_as_descendant(self, paper_graph, paper_query):
        """With closure expansion the engines treat every edge as reachability,
        so their answer must equal the descendant-only relaxation of the query."""
        from repro.query.generators import to_descendant_only

        relaxed = to_descendant_only(paper_query, name="DQ-paper")
        expected = frozenset(bruteforce_homomorphisms(paper_graph, relaxed))
        result = BinaryJoinEngine(paper_graph).match(paper_query)
        assert result.report.occurrence_set() == expected

    def test_reject_mode(self, paper_graph, paper_query):
        engine = BinaryJoinEngine(paper_graph, descendant_mode="reject")
        with pytest.raises(EngineError):
            engine.match(paper_query)

    def test_descendant_only_query_on_all_engines(self, paper_graph, paper_query):
        from repro.query.generators import to_descendant_only

        query = to_descendant_only(paper_query, name="DQ-paper")
        expected = frozenset(bruteforce_homomorphisms(paper_graph, query))
        for engine_class in ENGINE_CLASSES:
            result = engine_class(paper_graph).match(query)
            assert result.report.occurrence_set() == expected, engine_class


class TestCatalog:
    def test_catalog_contents(self, paper_graph):
        catalog = build_catalog(paper_graph)
        assert catalog.edge_cardinality("A", "B") == 3
        assert catalog.edge_cardinality("B", "C") == 7
        assert catalog.edge_cardinality("C", "A") == 0
        assert not catalog.truncated
        assert catalog.build_seconds >= 0.0
        assert catalog.path_counts[("A", "B", "C")] > 0

    def test_catalog_cap_marks_truncated(self, small_random_graph):
        catalog = build_catalog(small_random_graph, max_entries=1)
        assert catalog.truncated

    def test_wcoj_engine_oom_on_catalog_cap(self, small_random_graph):
        with pytest.raises(MemoryBudgetExceeded):
            WCOJEngine(small_random_graph, catalog_max_entries=1)

    def test_wcoj_catalog_growth_with_labels(self):
        from repro.graph.generators import random_labeled_graph, with_label_count

        base = random_labeled_graph(150, 600, 20, seed=3)
        few_labels = with_label_count(base, 3, seed=1)
        rich = build_catalog(base)
        poor = build_catalog(few_labels)
        assert len(rich.path_counts) >= len(poor.path_counts)


class TestEngineFailureModes:
    def test_binary_join_oom(self, small_random_graph):
        query = to_child_only(random_pattern_query(small_random_graph, 4, seed=5))
        engine = BinaryJoinEngine(
            small_random_graph, budget=Budget(max_intermediate_results=2, max_matches=None)
        )
        result = engine.match(query)
        assert result.report.status in (MatchStatus.OUT_OF_MEMORY, MatchStatus.OK)

    def test_timeout(self, small_random_graph):
        query = to_child_only(random_pattern_query(small_random_graph, 5, seed=6, dense=True))
        engine = RelationalEngine(
            small_random_graph, budget=Budget(time_limit_seconds=0.0, max_matches=None)
        )
        result = engine.match(query)
        assert result.report.status in (MatchStatus.TIMEOUT, MatchStatus.OK)
