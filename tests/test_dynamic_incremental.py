"""Incremental reachability maintenance: patched index == rebuilt index."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dynamic import GraphDelta, MutableDataGraph, should_patch
from repro.dynamic.maintenance import (
    patch_label_bitmaps,
    patch_partitions,
    patch_universe,
)
from repro.bitmap.roaring import RoaringBitmap
from repro.engines.relational import build_edge_partitions
from repro.graph.generators import random_labeled_graph
from repro.reachability.base import BFSReachability
from repro.reachability.bfl import BloomFilterLabeling
from repro.reachability.transitive_closure import TransitiveClosureIndex


def _all_pairs_agree(index, graph):
    for source in graph.nodes():
        for target in graph.nodes():
            expected = graph.reaches_bfs(source, target)
            assert index.reaches(source, target) == expected, (
                f"{type(index).__name__}: reaches({source}, {target}) != {expected}"
            )


@st.composite
def insert_only_case(draw):
    """A random graph plus an insert-only delta (nodes + arbitrary edges)."""
    num_nodes = draw(st.integers(min_value=2, max_value=16))
    num_edges = draw(st.integers(min_value=0, max_value=24))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    graph = random_labeled_graph(
        num_nodes, min(num_edges, num_nodes * (num_nodes - 1)), num_labels=3, seed=seed
    )
    delta = GraphDelta.for_graph(graph)
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        delta.add_node(draw(st.sampled_from(["A", "B", "C"])))
    total = graph.num_nodes + delta.num_added_nodes
    for _ in range(draw(st.integers(min_value=1, max_value=8))):
        delta.add_edge(
            draw(st.integers(min_value=0, max_value=total - 1)),
            draw(st.integers(min_value=0, max_value=total - 1)),
        )
    return graph, delta


class TestIncrementalBFL:
    @given(insert_only_case())
    @settings(max_examples=50, deadline=None)
    def test_patched_equals_ground_truth(self, case):
        """After a successful patch, every pair agrees with BFS truth.

        Arbitrary insert edges may merge SCCs; apply_delta then refuses
        (returns False) and the pre-patch index must still answer for the
        *old* graph — both outcomes are checked.
        """
        graph, delta = case
        overlay = MutableDataGraph(graph, delta)
        patched_graph = overlay.materialize()
        index = BloomFilterLabeling(graph)
        if index.apply_delta(patched_graph, overlay.delta_since_base()):
            assert index.patch_count == 1
            assert index.graph is patched_graph
            _all_pairs_agree(index, patched_graph)
        else:
            # refused: the index must be untouched and valid for the old graph
            assert index.patch_count == 0
            _all_pairs_agree(index, graph)

    def test_removal_delta_refused(self, paper_graph):
        index = BloomFilterLabeling(paper_graph)
        delta = GraphDelta.for_graph(paper_graph)
        delta.remove_edge(*next(iter(paper_graph.edges())))
        assert index.apply_delta(paper_graph, delta) is False

    def test_relabel_only_delta_is_patchable(self, paper_graph):
        index = BloomFilterLabeling(paper_graph)
        delta = GraphDelta.for_graph(paper_graph).relabel(0, "Z")
        overlay = MutableDataGraph(paper_graph, delta)
        patched = overlay.materialize()
        assert index.apply_delta(patched, overlay.delta_since_base()) is True
        _all_pairs_agree(index, patched)

    def test_mismatched_base_refused(self, paper_graph):
        index = BloomFilterLabeling(paper_graph)
        assert index.apply_delta(paper_graph, GraphDelta(base_num_nodes=99)) is False


class TestIncrementalClosure:
    @given(insert_only_case())
    @settings(max_examples=50, deadline=None)
    def test_patched_equals_rebuilt(self, case):
        """The patched closure is exact — even for cycle-closing inserts."""
        graph, delta = case
        overlay = MutableDataGraph(graph, delta)
        patched_graph = overlay.materialize()
        index = TransitiveClosureIndex(graph)
        assert index.apply_delta(patched_graph, overlay.delta_since_base()) is True
        rebuilt = TransitiveClosureIndex(patched_graph)
        for node in patched_graph.nodes():
            assert index.reachable_set(node) == rebuilt.reachable_set(node), node

    def test_removal_delta_refused(self, paper_graph):
        index = TransitiveClosureIndex(paper_graph)
        delta = GraphDelta.for_graph(paper_graph)
        delta.remove_edge(*next(iter(paper_graph.edges())))
        assert index.apply_delta(paper_graph, delta) is False


class TestBFSIndexDelta:
    def test_bfs_reachability_patches_any_delta(self, paper_graph):
        index = BFSReachability(paper_graph)
        delta = GraphDelta.for_graph(paper_graph)
        delta.remove_edge(*next(iter(paper_graph.edges())))
        overlay = MutableDataGraph(paper_graph, delta)
        patched = overlay.materialize()
        assert index.apply_delta(patched, overlay.delta_since_base()) is True
        _all_pairs_agree(index, patched)


class TestShouldPatch:
    def test_removals_always_rebuild(self, paper_graph):
        delta = GraphDelta.for_graph(paper_graph).remove_edge(1, 3)
        assert should_patch(paper_graph, delta) is False

    def test_small_insert_patches(self, paper_graph):
        delta = GraphDelta.for_graph(paper_graph).add_edge(0, 9)
        assert should_patch(paper_graph, delta) is True

    def test_bulk_insert_rebuilds(self):
        graph = random_labeled_graph(100, 200, num_labels=3, seed=1)
        delta = GraphDelta.for_graph(graph)
        for index in range(90):
            delta.add_edge(index % 100, (index * 7 + 1) % 100)
        assert should_patch(graph, delta) is False


class TestArtifactPatchHelpers:
    def _bitmaps_for(self, graph):
        return {
            label: RoaringBitmap(graph.inverted_list(label))
            for label in graph.label_alphabet()
        }

    def test_bitmap_patch_add_and_relabel(self, paper_graph):
        bitmaps = self._bitmaps_for(paper_graph)
        delta = GraphDelta.for_graph(paper_graph)
        new = delta.add_node("D")
        delta.relabel(0, "C")
        overlay = MutableDataGraph(paper_graph, delta)
        patched = overlay.materialize()
        assert patch_label_bitmaps(bitmaps, patched, overlay.delta_since_base())
        expected = self._bitmaps_for(patched)
        assert set(bitmaps) == set(expected)
        for label in expected:
            assert bitmaps[label].to_list() == expected[label].to_list(), label
        assert new in bitmaps["D"]

    def test_bitmap_patch_drops_emptied_label(self):
        graph = random_labeled_graph(4, 4, num_labels=4, seed=11)
        # Relabel every node of one label away so its bitmap disappears.
        victim = graph.label(0)
        bitmaps = self._bitmaps_for(graph)
        delta = GraphDelta.for_graph(graph)
        target = next(l for l in graph.label_alphabet() if l != victim)
        for node in graph.inverted_list(victim):
            delta.relabel(node, target)
        overlay = MutableDataGraph(graph, delta)
        patched = overlay.materialize()
        patch_label_bitmaps(bitmaps, patched, overlay.delta_since_base())
        assert victim not in bitmaps
        assert bitmaps[target].to_list() == list(patched.inverted_list(target))

    def test_universe_patch(self, paper_graph):
        universe = RoaringBitmap(range(paper_graph.num_nodes))
        delta = GraphDelta.for_graph(paper_graph)
        new = delta.add_node("A")
        patch_universe(universe, delta)
        assert new in universe
        assert len(universe) == paper_graph.num_nodes + 1

    def test_partitions_patch_insert_only(self, paper_graph):
        partitions = build_edge_partitions(paper_graph)
        delta = GraphDelta.for_graph(paper_graph)
        new = delta.add_node("D")
        delta.add_edge(0, new)
        overlay = MutableDataGraph(paper_graph, delta)
        patched = overlay.materialize()
        assert patch_partitions(partitions, patched, overlay.delta_since_base())
        rebuilt = build_edge_partitions(patched)
        assert {k: sorted(v) for k, v in partitions.items()} == {
            k: sorted(v) for k, v in rebuilt.items()
        }

    def test_partitions_patch_refuses_relabels(self, paper_graph):
        partitions = build_edge_partitions(paper_graph)
        before = {k: list(v) for k, v in partitions.items()}
        delta = GraphDelta.for_graph(paper_graph).relabel(0, "C")
        assert patch_partitions(partitions, paper_graph, delta) is False
        assert {k: list(v) for k, v in partitions.items()} == before
