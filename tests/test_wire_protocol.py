"""Unit tests for the wire protocol's codec layer.

Framing (length-prefixed JSON), the exception <-> error-payload mapping,
and the wire forms of the domain objects (patterns, budgets, match
reports, apply reports, batch reports, pages) — everything the server and
client share, tested without a socket where possible and over a local
``socketpair`` where framing semantics (truncation, EOF) need real bytes.
"""

from __future__ import annotations

import socket
import struct

import pytest

from repro.api import (
    decode_apply_report,
    decode_batch_report,
    encode_apply_report,
    encode_batch_report,
)
from repro.dynamic.maintenance import ApplyReport
from repro.exceptions import (
    CatalogError,
    GraphError,
    ProtocolError,
    QueryCancelled,
    QueryError,
    QueryParseError,
    ReproError,
    ServiceOverloadedError,
    StaleIndexError,
    StoreError,
    UnknownGraphError,
)
from repro.matching.result import Budget, MatchReport, MatchStatus
from repro.matching.stream import decode_page, encode_page
from repro.query.pattern import EdgeType, PatternQuery
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    decode_error,
    encode_error,
    encode_frame,
    read_frame_sync,
)
from repro.service.service import ServiceBatchReport
from repro.session.batch import QueryOutcome


def roundtrip_frames(*payloads):
    """Write frames into one end of a socketpair, read them from the other."""
    left, right = socket.socketpair()
    try:
        for payload in payloads:
            left.sendall(encode_frame(payload))
        left.close()
        frames = []
        while True:
            frame = read_frame_sync(right)
            if frame is None:
                return frames
            frames.append(frame)
    finally:
        right.close()


class TestFraming:
    def test_roundtrip(self):
        payloads = [
            {"id": 1, "op": "ping"},
            {"id": 2, "ok": True, "result": {"nested": [1, 2, {"x": None}]}},
            {"stream": 7, "seq": 0, "page": [[1, 2], [3, 4]]},
        ]
        assert roundtrip_frames(*payloads) == payloads

    def test_empty_object(self):
        assert roundtrip_frames({}) == [{}]

    def test_unicode_payload(self):
        payload = {"id": 1, "op": "create_graph", "name": "社交-𝔤𝔯𝔞𝔭𝔥"}
        assert roundtrip_frames(payload) == [payload]

    def test_clean_eof_returns_none(self):
        left, right = socket.socketpair()
        left.close()
        try:
            assert read_frame_sync(right) is None
        finally:
            right.close()

    def test_truncated_header_raises(self):
        left, right = socket.socketpair()
        try:
            left.sendall(b"\x00\x00")  # half a length prefix
            left.close()
            with pytest.raises(ProtocolError, match="mid-"):
                read_frame_sync(right)
        finally:
            right.close()

    def test_truncated_body_raises(self):
        left, right = socket.socketpair()
        try:
            left.sendall(struct.pack(">I", 100) + b'{"id": 1')  # promises 100 bytes
            left.close()
            with pytest.raises(ProtocolError, match="mid-frame"):
                read_frame_sync(right)
        finally:
            right.close()

    def test_oversized_length_prefix_raises(self):
        left, right = socket.socketpair()
        try:
            left.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
            with pytest.raises(ProtocolError, match="exceeds"):
                read_frame_sync(right)
        finally:
            left.close()
            right.close()

    def test_non_json_body_raises(self):
        left, right = socket.socketpair()
        try:
            body = b"\xff\xfe not json"
            left.sendall(struct.pack(">I", len(body)) + body)
            with pytest.raises(ProtocolError, match="not valid JSON"):
                read_frame_sync(right)
        finally:
            left.close()
            right.close()

    def test_non_object_body_raises(self):
        left, right = socket.socketpair()
        try:
            body = b"[1, 2, 3]"
            left.sendall(struct.pack(">I", len(body)) + body)
            with pytest.raises(ProtocolError, match="JSON object"):
                read_frame_sync(right)
        finally:
            left.close()
            right.close()


class TestErrorMapping:
    @pytest.mark.parametrize(
        "exc",
        [
            ServiceOverloadedError("queue_full", "10 queued >= limit 10"),
            ServiceOverloadedError("deadline", "expired before execution"),
            StaleIndexError("EH", "expanded_graph", 3, 1),
            UnknownGraphError("missing", ["a", "b"]),
            CatalogError("graph 'x' already exists"),
            QueryParseError("line 3: unknown directive"),
            QueryError("bad edge"),
            GraphError("node 7 outside 0..6"),
            StoreError("snapshot was already released"),
            ProtocolError("frame body is not valid JSON"),
            QueryCancelled("mid-setup"),
            TimeoutError("ticket 4 still running"),
        ],
    )
    def test_roundtrip_preserves_class(self, exc):
        decoded = decode_error(encode_error(exc))
        assert type(decoded) is type(exc)

    def test_overloaded_keeps_reason(self):
        for reason in ("queue_full", "deadline"):
            decoded = decode_error(encode_error(ServiceOverloadedError(reason, "d")))
            assert isinstance(decoded, ServiceOverloadedError)
            assert decoded.reason == reason

    def test_stale_index_keeps_versions(self):
        decoded = decode_error(encode_error(StaleIndexError("GF", "catalog", 5, 2)))
        assert isinstance(decoded, StaleIndexError)
        assert decoded.engine == "GF"
        assert decoded.artifact == "catalog"
        assert decoded.expected_version == 5
        assert decoded.found_version == 2

    def test_unknown_exception_becomes_repro_error(self):
        decoded = decode_error(encode_error(ValueError("boom")))
        assert type(decoded) is ReproError
        assert "boom" in str(decoded)
        assert "ValueError" in str(decoded)

    def test_unknown_code_is_tolerated(self):
        decoded = decode_error({"code": "from_the_future", "message": "hi"})
        assert isinstance(decoded, ReproError)

    def test_malformed_payload_is_tolerated(self):
        assert isinstance(decode_error(None), ProtocolError)
        assert isinstance(decode_error("nope"), ProtocolError)


class TestDomainWireForms:
    def test_pattern_query_roundtrip(self):
        query = PatternQuery(
            labels=["A", "B", "C"],
            edges=[(0, 1, EdgeType.CHILD), (1, 2, EdgeType.DESCENDANT)],
            name="hybrid",
        )
        restored = PatternQuery.from_dict(query.to_dict())
        assert restored == query
        assert restored.name == "hybrid"
        assert restored.edge(1, 2).is_descendant

    def test_pattern_query_survives_json(self):
        import json

        query = PatternQuery(["X", "Y"], [(0, 1, EdgeType.DESCENDANT)], name="xy")
        assert PatternQuery.from_dict(json.loads(json.dumps(query.to_dict()))) == query

    @pytest.mark.parametrize(
        "payload",
        [
            "not a dict",
            {},
            {"labels": "AB"},
            {"labels": ["A", "B"], "edges": "nope"},
            {"labels": ["A", "B"], "edges": [[0, 5, "child"]]},
            {"labels": ["A", "B"], "edges": [[0, 1, "sideways"]]},
        ],
    )
    def test_pattern_query_malformed(self, payload):
        with pytest.raises(QueryError):
            PatternQuery.from_dict(payload)

    def test_budget_roundtrip(self):
        budget = Budget(max_matches=7, time_limit_seconds=1.5, max_intermediate_results=None)
        restored = Budget.from_wire(budget.to_wire())
        assert restored == budget
        assert restored.cancel_event is None

    def test_budget_absent_keys_keep_defaults(self):
        assert Budget.from_wire({}) == Budget()

    def test_match_report_roundtrip(self):
        report = MatchReport(
            query_name="q",
            algorithm="GM",
            status=MatchStatus.MATCH_LIMIT,
            occurrences=[(1, 2), (3, 4)],
            num_matches=2,
            matching_seconds=0.25,
            enumeration_seconds=0.5,
            extra={"plans_considered": 3, "unserialisable": object()},
        )
        restored = MatchReport.from_wire(report.to_wire())
        assert restored.status is MatchStatus.MATCH_LIMIT
        assert restored.occurrences == [(1, 2), (3, 4)]
        assert restored.occurrence_set() == report.occurrence_set()
        assert restored.extra["plans_considered"] == 3
        assert isinstance(restored.extra["unserialisable"], str)

    def test_match_report_without_occurrences(self):
        report = MatchReport(
            query_name="q", algorithm="GM", status=MatchStatus.OK,
            occurrences=[(1,)], num_matches=1,
        )
        wire = report.to_wire(include_occurrences=False)
        assert wire["occurrences"] == []
        assert MatchReport.from_wire(wire).num_matches == 1

    def test_page_roundtrip(self):
        page = ((1, 2, 3), (4, 5, 6))
        assert decode_page(encode_page(page)) == page
        assert decode_page([]) == ()

    def test_apply_report_roundtrip(self):
        report = ApplyReport(
            old_version=1, new_version=2, num_ops=5, seconds=0.01,
            patched=["reachability"], invalidated=["catalog"],
        )
        restored = decode_apply_report(encode_apply_report(report))
        assert restored == report

    def test_batch_report_roundtrip(self):
        report = ServiceBatchReport(
            engine="GM",
            outcomes=[
                QueryOutcome(
                    name="q0", seconds=0.5, num_matches=2, status="ok",
                    occurrences=((1, 2), (3, 4)), extra={"rig": object()},
                ),
                QueryOutcome(name="q1", seconds=0.1, num_matches=0, status="timeout"),
            ],
            wall_seconds=0.6,
            workers=2,
            cache_hits={"rig": 1},
            cache_misses={"closure": 1},
            version=3,
        )
        restored = decode_batch_report(encode_batch_report(report))
        assert restored.version == 3
        assert restored.engine == "GM"
        assert len(restored.outcomes) == 2
        assert restored.outcomes[0].occurrence_set() == {(1, 2), (3, 4)}
        assert restored.outcomes[0].solved
        assert not restored.outcomes[1].solved
        assert restored.cache_hits == {"rig": 1}
        assert isinstance(restored.outcomes[0].extra["rig"], str)
