"""Property-based tests for double simulation and the RIG.

The two central invariants of the paper:

* the sandwich property (§4.2): for every query node ``q``,
  ``os(q) ⊆ FB(q) ⊆ ms(q)``;
* RIG losslessness (Proposition 4.1): if a homomorphism maps adjacent query
  nodes ``p, q`` to data nodes ``vp, vq``, then ``(vp, vq)`` is an edge of
  the RIG — so enumerating on the RIG loses no occurrence.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.bruteforce import bruteforce_homomorphisms
from repro.graph.digraph import DataGraph
from repro.matching.mjoin import mjoin
from repro.matching.result import Budget
from repro.query.generators import random_pattern_query
from repro.rig.build import build_match_rig, build_rig
from repro.simulation.context import MatchContext
from repro.simulation.fbsim import fbsim, fbsim_basic

UNLIMITED = Budget(max_matches=None, time_limit_seconds=None, max_intermediate_results=None)


@st.composite
def graph_and_query(draw):
    """A small random labelled graph plus a random hybrid query over it."""
    num_nodes = draw(st.integers(min_value=4, max_value=16))
    num_edges = draw(st.integers(min_value=3, max_value=40))
    num_labels = draw(st.integers(min_value=1, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    labels = [f"L{rng.randrange(num_labels)}" for _ in range(num_nodes)]
    edges = set()
    for _ in range(num_edges):
        u, v = rng.randrange(num_nodes), rng.randrange(num_nodes)
        if u != v:
            edges.add((u, v))
    graph = DataGraph(labels, sorted(edges), name=f"prop-{seed}")
    query_nodes = draw(st.integers(min_value=2, max_value=4))
    query = random_pattern_query(graph, query_nodes, seed=seed + 1)
    return graph, query


@settings(max_examples=40, deadline=None)
@given(data=graph_and_query())
def test_double_simulation_sandwich_property(data):
    graph, query = data
    context = MatchContext(graph)
    result = fbsim(context, query)
    answer = bruteforce_homomorphisms(graph, query, reachability=context.reachability)
    for node in query.nodes():
        occurrence_set = {occurrence[node] for occurrence in answer}
        match_set = set(context.match_set(query, node))
        assert occurrence_set <= result.candidates[node] <= match_set


@settings(max_examples=40, deadline=None)
@given(data=graph_and_query())
def test_fbsim_variants_agree(data):
    graph, query = data
    context = MatchContext(graph)
    assert fbsim(context, query).candidates == fbsim_basic(context, query).candidates


@settings(max_examples=30, deadline=None)
@given(data=graph_and_query())
def test_rig_losslessness(data):
    """Proposition 4.1: every homomorphism edge appears in the refined RIG."""
    graph, query = data
    context = MatchContext(graph)
    rig = build_rig(context, query).rig
    answer = bruteforce_homomorphisms(graph, query, reachability=context.reachability)
    # BuildRIG applies transitive reduction, so the RIG is built for an
    # equivalent query whose edges are a subset of the original's; Proposition
    # 4.1 applies to the RIG's own query edges.
    for occurrence in answer:
        for edge in rig.query.edges():
            vp, vq = occurrence[edge.source], occurrence[edge.target]
            assert vp in rig.candidates(edge.source)
            assert vq in set(rig.forward_adjacency(edge.source, edge.target, vp))


@settings(max_examples=30, deadline=None)
@given(data=graph_and_query())
def test_mjoin_over_rig_equals_bruteforce(data):
    graph, query = data
    context = MatchContext(graph)
    rig = build_rig(context, query).rig
    occurrences, _, _ = mjoin(rig, budget=UNLIMITED)
    expected = set(bruteforce_homomorphisms(graph, query, reachability=context.reachability))
    assert set(occurrences) == expected


@settings(max_examples=25, deadline=None)
@given(data=graph_and_query())
def test_mjoin_over_match_rig_equals_bruteforce(data):
    """Even the unfiltered match RIG loses no occurrences (it is only larger)."""
    graph, query = data
    context = MatchContext(graph)
    rig = build_match_rig(context, query).rig
    occurrences, _, _ = mjoin(rig, budget=UNLIMITED)
    expected = set(bruteforce_homomorphisms(graph, query, reachability=context.reachability))
    assert set(occurrences) == expected
