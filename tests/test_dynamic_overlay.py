"""Tests for GraphDelta and the MutableDataGraph overlay."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from fixtures_paper import A1, B0, C0, C2, build_paper_graph
from repro.dynamic import GraphDelta, MutableDataGraph, merged_delta
from repro.exceptions import GraphError
from repro.graph.generators import random_labeled_graph


class TestGraphDelta:
    def test_add_node_assigns_dense_ids(self):
        delta = GraphDelta(base_num_nodes=5)
        assert delta.add_node("A") == 5
        assert delta.add_node("B") == 6
        assert delta.num_added_nodes == 2
        assert delta.added_nodes == [(5, "A"), (6, "B")]

    def test_edges_may_reference_new_nodes(self):
        delta = GraphDelta(base_num_nodes=3)
        node = delta.add_node("X")
        delta.add_edge(0, node)
        delta.add_edge(node, 2)
        assert delta.added_edges == [(0, 3), (3, 2)]

    def test_out_of_range_edge_rejected(self):
        delta = GraphDelta(base_num_nodes=3)
        with pytest.raises(GraphError):
            delta.add_edge(0, 3)
        with pytest.raises(GraphError):
            delta.remove_edge(-1, 0)

    def test_shape_flags(self):
        insert_only = GraphDelta(4).add_edge(0, 1)
        assert insert_only.is_insert_only
        assert not insert_only.has_removals
        with_removal = GraphDelta(4).remove_edge(0, 1)
        assert with_removal.has_removals and not with_removal.is_insert_only
        with_relabel = GraphDelta(4).relabel(2, "Z")
        assert with_relabel.has_relabels and not with_relabel.is_insert_only
        assert not with_relabel.has_removals

    def test_dict_round_trip_preserves_op_order(self):
        delta = GraphDelta(2)
        delta.add_edge(0, 1)
        node = delta.add_node("N")
        delta.relabel(0, "M")
        delta.remove_edge(0, 1)
        delta.add_edge(node, 0)
        restored = GraphDelta.from_dict(delta.to_dict())
        assert restored.ops == delta.ops
        assert restored.base_num_nodes == delta.base_num_nodes

    def test_from_dict_rejects_unknown_op(self):
        with pytest.raises(GraphError):
            GraphDelta.from_dict({"base_num_nodes": 1, "ops": [["drop_table", 0]]})

    @pytest.mark.parametrize(
        "payload",
        [
            {"base_num_nodes": 2, "ops": [["add_edge", 0]]},          # arity
            {"base_num_nodes": 2, "ops": [["add_edge", "x", "y"]]},   # types
            {"base_num_nodes": 2, "ops": [["relabel", 0, "L", 9]]},   # arity
            {"base_num_nodes": "many", "ops": []},                    # base
        ],
    )
    def test_from_dict_wraps_malformed_payloads(self, payload):
        # corrupt documents surface as GraphError, never IndexError/ValueError
        with pytest.raises(GraphError):
            GraphDelta.from_dict(payload)

    def test_merged_delta(self):
        first = GraphDelta(2)
        first.add_node("A")
        second = GraphDelta(3)
        second.add_edge(2, 0)
        merged = merged_delta(first, second)
        assert merged.num_added_nodes == 1
        assert merged.added_edges == [(2, 0)]
        with pytest.raises(GraphError):
            merged_delta(first, GraphDelta(99))


class TestMutableDataGraph:
    def test_overlay_reads_through_to_base(self, paper_graph):
        overlay = MutableDataGraph(paper_graph)
        assert overlay.num_nodes == paper_graph.num_nodes
        assert overlay.num_edges == paper_graph.num_edges
        assert overlay.version == paper_graph.version
        for node in paper_graph.nodes():
            assert overlay.successors(node) == paper_graph.successors(node)
            assert overlay.label(node) == paper_graph.label(node)
        assert overlay.label_alphabet() == paper_graph.label_alphabet()
        assert not overlay.is_dirty()
        assert overlay.materialize() is paper_graph

    def test_add_edge_and_node_visible_in_all_views(self, paper_graph):
        overlay = MutableDataGraph(paper_graph)
        new = overlay.add_node("D")
        assert overlay.add_edge(A1, new)
        assert overlay.has_edge(A1, new)
        assert overlay.has_edge_binary_search(A1, new)
        assert new in overlay.successors(A1)
        assert A1 in overlay.predecessors(new)
        assert new in overlay.successor_set(A1)
        assert overlay.inverted_list("D") == (new,)
        assert "D" in overlay.label_alphabet()
        assert overlay.num_edges == paper_graph.num_edges + 1
        assert overlay.version == paper_graph.version + 2  # two single-op batches

    def test_duplicate_add_edge_is_noop(self, paper_graph):
        overlay = MutableDataGraph(paper_graph)
        assert overlay.add_edge(A1, B0) is False
        assert overlay.num_edges == paper_graph.num_edges
        assert not overlay.is_dirty()

    def test_remove_edge(self, paper_graph):
        overlay = MutableDataGraph(paper_graph)
        overlay.remove_edge(A1, B0)
        assert not overlay.has_edge(A1, B0)
        assert B0 not in overlay.successors(A1)
        assert A1 not in overlay.predecessors(B0)
        assert overlay.num_edges == paper_graph.num_edges - 1
        with pytest.raises(GraphError):
            overlay.remove_edge(A1, B0)

    def test_remove_then_readd(self, paper_graph):
        overlay = MutableDataGraph(paper_graph)
        overlay.remove_edge(A1, B0)
        assert overlay.add_edge(A1, B0)
        assert overlay.has_edge(A1, B0)
        assert overlay.num_edges == paper_graph.num_edges

    def test_relabel_moves_inverted_lists(self, paper_graph):
        overlay = MutableDataGraph(paper_graph)
        assert overlay.relabel(C0, "A")
        assert C0 not in overlay.inverted_list("C")
        assert C0 in overlay.inverted_list("A")
        assert overlay.label(C0) == "A"
        # untouched label delegates to the base tuple (no copy)
        assert overlay.inverted_list("B") is paper_graph.inverted_list("B")

    def test_apply_batched_delta_bumps_version_once(self, paper_graph):
        delta = GraphDelta.for_graph(paper_graph)
        node = delta.add_node("E")
        delta.add_edge(A1, node)
        delta.add_edge(node, C0)
        overlay = MutableDataGraph(paper_graph, delta)
        assert overlay.version == paper_graph.version + 1
        assert overlay.num_nodes == paper_graph.num_nodes + 1
        materialized = overlay.materialize()
        assert materialized.version == overlay.version
        assert materialized.has_edge(A1, node) and materialized.has_edge(node, C0)

    def test_apply_noop_batch_keeps_version(self, paper_graph):
        delta = GraphDelta.for_graph(paper_graph)
        delta.add_edge(A1, B0)  # already present
        delta.relabel(A1, "A")  # unchanged label
        overlay = MutableDataGraph(paper_graph, delta)
        assert overlay.version == paper_graph.version
        assert not overlay.is_dirty()
        assert overlay.materialize() is paper_graph

    def test_apply_rejects_mismatched_base(self, paper_graph):
        delta = GraphDelta(base_num_nodes=paper_graph.num_nodes + 1)
        with pytest.raises(GraphError):
            MutableDataGraph(paper_graph, delta)

    def test_delta_since_base_skips_noops(self, paper_graph):
        overlay = MutableDataGraph(paper_graph)
        overlay.add_edge(A1, B0)  # already exists: no-op
        overlay.relabel(A1, "A")  # same label: no-op
        overlay.add_edge(A1, C2)
        effective = overlay.delta_since_base()
        assert len(effective) == 1
        assert effective.added_edges == [(A1, C2)]

    def test_traversals_see_overlay(self, paper_graph):
        overlay = MutableDataGraph(paper_graph)
        sink = overlay.add_node("Z")
        overlay.add_edge(C0, sink)
        assert sink in overlay.bfs_forward(A1)
        assert A1 in overlay.bfs_backward(sink)
        assert overlay.reaches_bfs(A1, sink)
        assert not overlay.reaches_bfs(sink, A1)


@st.composite
def graph_and_ops(draw):
    """A random base graph plus a random mixed mutation sequence."""
    num_nodes = draw(st.integers(min_value=2, max_value=14))
    num_edges = draw(st.integers(min_value=0, max_value=25))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    graph = random_labeled_graph(
        num_nodes, min(num_edges, num_nodes * (num_nodes - 1)), num_labels=3, seed=seed
    )
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["add_node", "add_edge", "remove_edge", "relabel"]),
                st.integers(min_value=0, max_value=10_000),
                st.integers(min_value=0, max_value=10_000),
            ),
            min_size=1,
            max_size=12,
        )
    )
    return graph, ops


@given(graph_and_ops())
@settings(max_examples=40, deadline=None)
def test_overlay_equals_materialized(case):
    """Every read answered by the overlay equals the materialised graph's."""
    graph, ops = case
    overlay = MutableDataGraph(graph)
    labels = ("A", "B", "C", "D")
    for kind, a, b in ops:
        n = overlay.num_nodes
        if kind == "add_node":
            overlay.add_node(labels[a % len(labels)])
        elif kind == "add_edge":
            overlay.add_edge(a % n, b % n)
        elif kind == "remove_edge":
            edges = sorted(overlay.edges())
            if edges:
                overlay.remove_edge(*edges[a % len(edges)])
        else:
            overlay.relabel(a % n, labels[b % len(labels)])
    materialized = overlay.materialize()
    assert overlay.num_nodes == materialized.num_nodes
    assert overlay.num_edges == materialized.num_edges
    assert sorted(overlay.edges()) == sorted(materialized.edges())
    assert overlay.labels == materialized.labels
    assert overlay.label_alphabet() == materialized.label_alphabet()
    for node in materialized.nodes():
        assert overlay.successors(node) == materialized.successors(node)
        assert overlay.predecessors(node) == materialized.predecessors(node)
        assert overlay.successor_set(node) == materialized.successor_set(node)
        assert overlay.predecessor_set(node) == materialized.predecessor_set(node)
    for label in materialized.label_alphabet():
        assert overlay.inverted_list(label) == materialized.inverted_list(label)
        assert overlay.inverted_set(label) == materialized.inverted_set(label)
    # a replay of the effective delta reproduces the same graph
    replay = MutableDataGraph(graph, overlay.delta_since_base()).materialize()
    assert sorted(replay.edges()) == sorted(materialized.edges())
    assert replay.labels == materialized.labels
