"""Tests for the concurrent query service: admission, deadlines, streaming."""

import pytest

from fixtures_paper import B0, C0, PAPER_ANSWER
from repro.dynamic import GraphDelta
from repro.exceptions import ServiceOverloadedError, StoreError
from repro.matching.result import MatchStatus
from repro.service import (
    QueryService,
    ServiceConfig,
    TICKET_CANCELLED,
    TICKET_DONE,
    TICKET_SHED,
)
from repro.store import VersionedGraphStore


@pytest.fixture()
def service(paper_graph) -> QueryService:
    service = QueryService(
        paper_graph, config=ServiceConfig(workers=2, queue_limit=8)
    )
    yield service
    service.close()


def _new_a_delta(graph):
    delta = GraphDelta.for_graph(graph)
    node = delta.add_node("A")
    delta.add_edge(node, B0)
    delta.add_edge(node, C0)
    return delta, node


class TestSubmitAndQuery:
    def test_sync_query(self, service, paper_query):
        report = service.query(paper_query)
        assert report.occurrence_set() == PAPER_ANSWER

    def test_ticket_lifecycle(self, service, paper_query):
        ticket = service.submit(paper_query)
        report = ticket.result(timeout=30.0)
        assert ticket.status == TICKET_DONE
        assert ticket.done and ticket.pinned_version == 0
        assert report.occurrence_set() == PAPER_ANSWER

    def test_engine_selection(self, service, paper_graph, paper_query):
        from repro.session import QuerySession

        reference = QuerySession(paper_graph)
        for engine in ("GM", "Neo4j", "EH"):
            assert (
                service.query(paper_query, engine=engine).occurrence_set()
                == reference.query(paper_query, engine=engine).occurrence_set()
            ), engine

    def test_submit_after_close_raises(self, paper_graph, paper_query):
        service = QueryService(paper_graph)
        service.close()
        with pytest.raises(StoreError):
            service.submit(paper_query)


class TestBatchesAndVersions:
    def test_batch_carries_pinned_version(self, service, paper_query):
        batch = service.run_batch({"q": paper_query, "again": paper_query})
        assert batch.version == 0
        assert batch.num_queries == 2 and batch.solved_count == 2

    def test_batch_after_apply_sees_new_version(self, service, paper_query):
        delta, node = _new_a_delta(service.store.graph)
        service.apply(delta)
        batch = service.run_batch({"q": paper_query})
        assert batch.version == 1
        assert (node, B0, C0) in batch.answers()["q"]

    def test_batch_on_explicit_snapshot_is_version_stable(self, service, paper_query):
        snapshot = service.store.pin()
        try:
            delta, _node = _new_a_delta(service.store.graph)
            service.apply(delta)
            batch = service.run_batch({"q": paper_query}, snapshot=snapshot)
            assert batch.version == 0
            assert batch.answers()["q"] == PAPER_ANSWER
        finally:
            snapshot.release()

    def test_stats_track_versions_served(self, service, paper_query):
        service.run_batch({"q": paper_query})
        delta, _node = _new_a_delta(service.store.graph)
        service.apply(delta)
        service.run_batch({"q": paper_query})
        versions = service.stats.versions_served()
        assert versions.get(0) == 1 and versions.get(1) == 1


class TestAdmissionControl:
    def test_queue_full_sheds(self, paper_graph, paper_query):
        # submits far outpace a single worker: the bounded queue must shed
        service = QueryService(
            paper_graph, config=ServiceConfig(workers=1, queue_limit=1)
        )
        try:
            shed = None
            tickets = []
            for _attempt in range(500):
                try:
                    tickets.append(service.submit(paper_query))
                except ServiceOverloadedError as error:
                    shed = error
                    break
            assert shed is not None and shed.reason == "queue_full"
            assert service.stats.shed_queue_full >= 1
            # admitted tickets still complete normally
            for ticket in tickets:
                ticket.result(timeout=30.0)
        finally:
            service.close()

    def test_deadline_shed_before_execution(self, service, paper_query):
        ticket = service.submit(paper_query, deadline_seconds=-0.5)
        with pytest.raises(ServiceOverloadedError) as excinfo:
            ticket.result(timeout=30.0)
        assert excinfo.value.reason == "deadline"
        assert ticket.status == TICKET_SHED
        assert service.stats.shed_deadline == 1

    def test_deadline_clamps_running_budget(self, service, paper_query):
        # a generous deadline leaves the budget's own limit intact
        report = service.query(paper_query, deadline_seconds=60.0)
        assert report.status is MatchStatus.OK

    def test_cancel_queued_ticket(self, service, paper_query):
        ticket = service.submit(paper_query)
        ticket.cancel()
        ticket.wait(timeout=30.0)
        assert ticket.status in (TICKET_CANCELLED, TICKET_DONE)
        # result() honours the contract either way: a report, never a crash
        report = ticket.result(timeout=30.0)
        if ticket.status == TICKET_CANCELLED:
            assert report.status is MatchStatus.CANCELLED
            # a never-executed query records no latency / version sample
            assert -1 not in service.stats.versions_served()

    def test_shed_count_aggregates(self, service, paper_query):
        ticket = service.submit(paper_query, deadline_seconds=-1.0)
        with pytest.raises(ServiceOverloadedError):
            ticket.result(timeout=30.0)
        assert service.stats.shed_count == 1


class TestStreaming:
    def test_pages_partition_occurrences(self, service, paper_query):
        with service.stream(paper_query, page_size=2) as stream:
            pages = list(stream.pages(timeout=30.0))
        assert sum(len(page) for page in pages) == len(PAPER_ANSWER)
        assert all(len(page) <= 2 for page in pages)
        flattened = {occurrence for page in pages for occurrence in page}
        assert flattened == PAPER_ANSWER

    def test_stream_pins_its_version_across_applies(self, service, paper_query):
        stream = service.stream(paper_query, page_size=4)
        delta, _node = _new_a_delta(service.store.graph)
        service.apply(delta)  # publishes v1 while the stream is pinned to v0
        occurrences = set(stream)
        assert stream.version == 0
        assert occurrences == PAPER_ANSWER

    def test_stream_releases_pin_on_close(self, service, paper_query):
        stream = service.stream(paper_query, page_size=4)
        assert service.store.pinned_epoch_count == 1
        stream.close()
        assert service.store.pinned_epoch_count == 0

    def test_iteration_releases_pin(self, service, paper_query):
        list(service.stream(paper_query, page_size=3))
        assert service.store.pinned_epoch_count == 0

    def test_invalid_page_size(self, service, paper_query):
        with pytest.raises(ValueError):
            service.stream(paper_query, page_size=0)


class TestStatsSnapshot:
    def test_snapshot_shape(self, service, paper_query):
        service.query(paper_query)
        snapshot = service.stats_snapshot()
        for key in (
            "submitted",
            "completed",
            "shed_count",
            "throughput_qps",
            "latency_p50_seconds",
            "latency_p95_seconds",
            "latency_p99_seconds",
            "head_version",
            "pinned_epochs",
            "versions_retained",
            "store",
        ):
            assert key in snapshot, key
        assert snapshot["completed"] == 1
        assert snapshot["latency_p50_seconds"] >= 0.0
        assert snapshot["store"]["applies"] == 0

    def test_percentiles_monotone(self, service, paper_query):
        for _round in range(5):
            service.query(paper_query)
        stats = service.stats
        assert stats.p50 <= stats.p95 <= stats.p99

    def test_service_over_existing_store(self, paper_graph, paper_query):
        store = VersionedGraphStore(paper_graph)
        service = QueryService(store, config=ServiceConfig(workers=1))
        try:
            service.query(paper_query)
        finally:
            service.close()
        # the service did not own the store: still usable
        with store.pin() as snap:
            assert snap.query(paper_query).occurrence_set() == PAPER_ANSWER
        store.close()
