"""Cluster observability tests: cross-node tracing, health, events, routing.

Four layers, bottom-up:

* the vocabulary — :class:`TraceContext` wire round-trips,
  :class:`SpanRecorder` rings, :func:`assemble_trace` stitching,
  :class:`EventLog` sequencing and the health-state lattice;
* the wire surface — the ``health`` / ``events`` / ``spans`` ops and
  ``server_errors_total`` on a live :class:`GraphServer`;
* the distributed-trace bar — ONE traced write through
  :class:`RoutedClient` must come back as a single stitched tree:
  router root, primary ingest→fold→publish/ship, and a ``replica_apply``
  span from every connected replica hanging off the primary's fold;
* the frozen-node bar — a SIGSTOP'd replica (socket open, nothing
  answering) must be probed as ``unreachable`` within the probe timeout
  and routed around.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.client import GraphClient, RoutedClient
from repro.obs import (
    DEGRADED,
    READY,
    UNHEALTHY,
    UNREACHABLE,
    EventLog,
    Span,
    SpanRecorder,
    TraceContext,
    assemble_trace,
    classify_tenant,
    is_servable,
    worst,
)
from repro.replication import ReplicaServer
from repro.server import GraphServer

pytestmark = pytest.mark.timeout(120)

PAPER_DSL = "node a A\nnode b B\nedge a -> b"


def wait_until(predicate, timeout=30.0, interval=0.02, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {message}")


# ---------------------------------------------------------------------- #
# vocabulary: contexts, spans, assembly
# ---------------------------------------------------------------------- #


class TestTraceContext:
    def test_wire_round_trip(self):
        context = TraceContext("t1", "s1", True)
        decoded = TraceContext.from_wire(context.to_wire())
        assert (decoded.trace_id, decoded.span_id, decoded.sampled) == (
            "t1",
            "s1",
            True,
        )

    def test_unsampled_round_trip(self):
        decoded = TraceContext.from_wire(
            TraceContext("t1", None, False).to_wire()
        )
        assert decoded.span_id is None
        assert decoded.sampled is False

    def test_legacy_plain_string_is_sampled_root(self):
        decoded = TraceContext.from_wire("legacy-id")
        assert decoded.trace_id == "legacy-id"
        assert decoded.span_id is None
        assert decoded.sampled is True

    def test_none_and_garbage_decode_to_none(self):
        assert TraceContext.from_wire(None) is None
        assert TraceContext.from_wire("") is None
        assert TraceContext.from_wire(42) is None
        assert TraceContext.from_wire({"sampled": True}) is None

    def test_child_keeps_trace_and_sampling(self):
        child = TraceContext("t1", "s1", False).child("s2")
        assert (child.trace_id, child.span_id, child.sampled) == (
            "t1",
            "s2",
            False,
        )

    def test_new_contexts_are_unique(self):
        assert TraceContext.new().trace_id != TraceContext.new().trace_id


class TestSpanRecorder:
    def test_ring_keeps_newest_and_counts_all(self):
        recorder = SpanRecorder(capacity=3)
        for i in range(5):
            recorder.record(Span(f"s{i}", "t1").finish(seconds=0.0))
        assert recorder.recorded == 5
        assert [span["name"] for span in recorder.recent()] == ["s2", "s3", "s4"]

    def test_for_trace_filters(self):
        recorder = SpanRecorder()
        recorder.record(Span("a", "t1").finish())
        recorder.record(Span("b", "t2").finish())
        assert [span["name"] for span in recorder.for_trace("t2")] == ["b"]

    def test_finish_is_idempotent(self):
        span = Span("a", "t1")
        span.finish(seconds=1.0)
        span.finish(seconds=9.0)
        assert span.to_dict()["seconds"] == 1.0


class TestAssembleTrace:
    def _span(self, name, span_id, parent_id, started_at, seconds):
        return {
            "name": name,
            "trace_id": "t1",
            "span_id": span_id,
            "parent_id": parent_id,
            "started_at": started_at,
            "seconds": seconds,
        }

    def test_tree_shape_children_and_orphans(self):
        spans = [
            self._span("root", "r", None, 0.0, 1.0),
            self._span("late", "c2", "r", 0.5, 0.4),
            self._span("early", "c1", "r", 0.1, 0.5),
            self._span("lost", "o1", "missing-parent", 0.2, 0.1),
        ]
        tree = assemble_trace(spans)
        assert tree["trace_id"] == "t1"
        assert tree["root"]["span"]["name"] == "root"
        assert [child["span"]["name"] for child in tree["root"]["children"]] == [
            "early",
            "late",
        ]
        assert tree["root"]["child_seconds"] == pytest.approx(0.9)
        assert [node["span"]["name"] for node in tree["orphans"]] == ["lost"]

    def test_duplicate_span_ids_deduplicate(self):
        spans = [
            self._span("root", "r", None, 0.0, 1.0),
            self._span("root-dup", "r", None, 0.0, 2.0),
        ]
        tree = assemble_trace(spans)
        assert len(tree["spans"]) == 1
        assert tree["root"]["span"]["name"] == "root"

    def test_trace_id_filter(self):
        spans = [
            self._span("root", "r", None, 0.0, 1.0),
            dict(self._span("other", "x", None, 0.0, 1.0), trace_id="t2"),
        ]
        tree = assemble_trace(spans, trace_id="t2")
        assert [span["name"] for span in tree["spans"]] == ["other"]


class TestEventLog:
    def test_sequence_survives_ring_overflow(self):
        log = EventLog(capacity=3)
        for i in range(10):
            log.emit("tick", f"event {i}")
        events = log.recent()
        assert [event["seq"] for event in events] == [8, 9, 10]
        assert log.last_seq == 10

    def test_kind_and_after_seq_filters(self):
        log = EventLog()
        log.emit("a", "first")
        log.emit("b", "second")
        log.emit("a", "third")
        assert [e["message"] for e in log.recent(kinds=["a"])] == [
            "first",
            "third",
        ]
        assert [e["message"] for e in log.recent(after_seq=2)] == ["third"]

    def test_extra_fields_kept_nones_dropped(self):
        record = EventLog().emit("kind", "msg", tenant="paper", extra=None)
        assert record["tenant"] == "paper"
        assert "extra" not in record


class TestHealthVocabulary:
    def test_worst_ordering(self):
        assert worst([]) == READY
        assert worst([READY, DEGRADED]) == DEGRADED
        assert worst([DEGRADED, UNHEALTHY, READY]) == UNHEALTHY
        assert worst([READY, UNREACHABLE]) == UNREACHABLE
        assert worst(["made-up-state"]) == UNHEALTHY

    def test_servable_states(self):
        assert is_servable(READY) and is_servable(DEGRADED)
        assert not is_servable(UNHEALTHY)
        assert not is_servable(UNREACHABLE)

    def test_classify_primary_always_ready(self):
        assert classify_tenant("primary", None) == READY
        assert classify_tenant("primary", {"lag_versions": 9999}) == READY

    def test_classify_replica_by_tail(self):
        ok = {"connected": True, "lag_versions": 0}
        assert classify_tenant("replica", ok) == READY
        assert (
            classify_tenant("replica", {"connected": False, "lag_versions": 0})
            == DEGRADED
        )
        assert (
            classify_tenant("replica", {"connected": True, "lag_versions": 17})
            == DEGRADED
        )
        assert (
            classify_tenant("replica", {"connected": True, "lag_versions": 2000})
            == UNHEALTHY
        )
        assert (
            classify_tenant(
                "replica",
                {"connected": True, "lag_versions": 5},
                degraded_lag_versions=4,
            )
            == DEGRADED
        )


# ---------------------------------------------------------------------- #
# wire surface: health / events / spans ops, error counters
# ---------------------------------------------------------------------- #


@pytest.fixture()
def primary(tmp_path):
    with GraphServer(
        node="primary-under-test", data_dir=str(tmp_path / "primary")
    ) as server:
        host, port = server.address
        with GraphClient(host, port) as client:
            client.create_graph(
                "paper", labels=["A", "B", "C"], edges=[(0, 1), (0, 2)]
            )
            yield server, client


class TestHealthOp:
    def test_primary_health_document_shape(self, primary):
        server, client = primary
        document = client.health()
        assert document["status"] == READY
        assert document["node"] == "primary-under-test"
        assert document["role"] == "primary"
        assert document["uptime_seconds"] >= 0.0
        tenant = document["tenants"]["paper"]
        assert tenant["status"] == READY
        assert tenant["head_version"] == 0
        assert tenant["read_only"] is False
        # durable server: WAL counters ride the health reply
        assert tenant["wal"]["entries_since_checkpoint"] == 0

    def test_health_tracks_head_version(self, primary):
        _, client = primary
        client.ingest(labels=["D"], edges=[(0, 3)])
        assert client.health()["tenants"]["paper"]["head_version"] == 1


class TestEventsOp:
    def test_lifecycle_events_visible_over_wire(self, primary):
        server, client = primary
        payload = client.events()
        kinds = {event["kind"] for event in payload["events"]}
        assert "listening" in kinds
        assert "client_connect" in kinds
        assert "create_graph" in kinds
        assert payload["last_seq"] >= len(payload["events"])

    def test_after_seq_pagination(self, primary):
        server, client = primary
        first = client.events()
        server.events.emit("custom", "something happened")
        fresh = client.events(after_seq=first["last_seq"])
        assert [e["kind"] for e in fresh["events"]] == ["custom"]


class TestSpansOp:
    def test_traced_ingest_records_server_spans(self, primary):
        _, client = primary
        context = TraceContext.new()
        client.ingest(labels=["D"], edges=[(0, 3)], trace=context)
        spans = client.trace_spans(trace_id=context.trace_id)
        names = {span["name"] for span in spans}
        assert {"ingest", "fold", "publish"} <= names
        assert all(span["trace_id"] == context.trace_id for span in spans)

    def test_untraced_writes_record_nothing(self, primary):
        _, client = primary
        client.ingest(labels=["D"], edges=[(0, 3)])
        assert client.trace_spans(limit=100) == ()

    def test_query_records_read_span(self, primary):
        _, client = primary
        context = TraceContext.new()
        client.query(PAPER_DSL, trace_id=context)
        spans = client.trace_spans(trace_id=context.trace_id)
        assert [span["name"] for span in spans] == ["query"]


class TestServerErrorCounter:
    def test_errors_labelled_by_op_and_kind(self, primary):
        _, client = primary
        with pytest.raises(Exception):
            client.query("this is { not a query")
        families = client.server_metrics(graph="paper")
        errors = families["server_errors_total"]["values"]
        assert any(
            value["labels"]["op"] == "query" and value["value"] >= 1
            for value in errors
        )
        # the kind label is the wire error code, never empty
        assert all(value["labels"]["kind"] for value in errors)


# ---------------------------------------------------------------------- #
# the distributed-trace bar: one write, one tree, every node
# ---------------------------------------------------------------------- #


class TestClusterTrace:
    def test_single_traced_write_spans_every_node(self):
        with GraphServer(node="primary-a") as server:
            host, port = server.address
            with GraphClient(host, port) as client:
                client.create_graph(
                    "paper", labels=["A", "B", "C"], edges=[(0, 1), (0, 2)]
                )
            replicas = [
                ReplicaServer(host, port, node=f"replica-{i}") for i in range(2)
            ]
            for replica in replicas:
                replica.start()
            routed = None
            try:
                routed = RoutedClient(
                    (host, port),
                    replicas=[replica.address for replica in replicas],
                    graph="paper",
                )
                report = routed.ingest(
                    labels=["D"], edges=[(0, 3)], trace=True
                )
                trace_id = routed.last_trace_id
                assert trace_id is not None
                wait_until(
                    lambda: all(
                        replica.status()["paper"]["head_version"]
                        == report.new_version
                        for replica in replicas
                    ),
                    message="replicas to fold the traced write",
                )

                spans = routed.trace_spans()
                assert all(
                    span["trace_id"] == trace_id for span in spans
                ), "one write must produce exactly one trace"
                tree = assemble_trace(spans, trace_id=trace_id)
                assert tree["orphans"] == []
                assert len(tree["roots"]) == 1

                root = tree["root"]
                assert root["span"]["name"] == "write"
                assert root["span"]["node"] == "router"

                by_name = {}
                for span in spans:
                    by_name.setdefault(span["name"], []).append(span)

                # the client root's children account for its duration
                assert root["child_seconds"] == pytest.approx(
                    root["span"]["seconds"], rel=0.10
                )

                # primary-side chain: ingest -> fold -> {publish, ship}
                (ingest,) = by_name["ingest"]
                (fold,) = [
                    span
                    for span in by_name["fold"]
                    if span["node"] == "primary-a"
                ]
                assert ingest["node"] == "primary-a"
                assert fold["parent_id"] == ingest["span_id"]
                primary_children = {
                    span["name"]
                    for span in spans
                    if span["parent_id"] == fold["span_id"]
                    and span["node"] == "primary-a"
                }
                assert {"publish", "ship"} <= primary_children

                # every replica's apply hangs off the primary's fold span
                applies = by_name["replica_apply"]
                assert {span["node"] for span in applies} == {
                    "replica-0",
                    "replica-1",
                }
                assert all(
                    span["parent_id"] == fold["span_id"] for span in applies
                )
                assert all(
                    span["meta"]["version"] == report.new_version
                    for span in applies
                )
            finally:
                if routed is not None:
                    routed.close()
                for replica in replicas:
                    replica.close()

    def test_replica_health_reports_replication(self):
        with GraphServer() as server:
            host, port = server.address
            with GraphClient(host, port) as client:
                client.create_graph("paper", labels=["A"], edges=())
            with ReplicaServer(host, port, node="replica-h") as replica:
                rhost, rport = replica.address
                with GraphClient(rhost, rport) as tail_client:
                    wait_until(
                        lambda: tail_client.health()["status"] == READY,
                        message="replica to report ready",
                    )
                    document = tail_client.health()
                    assert document["role"] == "replica"
                    assert document["node"] == "replica-h"
                    replication = document["tenants"]["paper"]["replication"]
                    assert replication["connected"] is True
                    assert replication["lag_versions"] == 0


# ---------------------------------------------------------------------- #
# routed client: lag surface + routing around a frozen node
# ---------------------------------------------------------------------- #


CHILD_REPLICA = """
import sys
from repro.replication import ReplicaServer

replica = ReplicaServer(sys.argv[1], int(sys.argv[2]), node=sys.argv[3])
host, port = replica.start()
print(host, port, flush=True)
import signal
signal.pause()
"""


def _child_env():
    src_dir = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(src_dir) + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    return env


class TestRoutedObservability:
    def test_stats_surface_observed_lag_and_states(self):
        with GraphServer() as server:
            host, port = server.address
            with GraphClient(host, port) as client:
                client.create_graph("paper", labels=["A", "B"], edges=[(0, 1)])
            with ReplicaServer(host, port, node="replica-s") as replica:
                routed = RoutedClient(
                    (host, port),
                    replicas=[replica.address],
                    graph="paper",
                )
                try:
                    routed.ingest(labels=["C"], edges=[(0, 2)])
                    wait_until(
                        lambda: replica.status()["paper"]["head_version"] == 1,
                        message="replica catch-up",
                    )
                    # reads force a health probe, which observes the lag
                    assert routed.count(PAPER_DSL) >= 1
                    routed.health()  # probe the primary too
                    stats = routed.stats()
                    assert stats["primary"]["status"] == READY
                    (replica_stats,) = stats["replicas"]
                    assert replica_stats["status"] == READY
                    assert replica_stats["lag_versions"] == {"paper": 0}
                    families = routed.local_metrics()
                    lag_values = families["routed_replica_lag_versions"][
                        "values"
                    ]
                    assert [
                        value["labels"]["replica"] for value in lag_values
                    ] == [replica_stats["target"]]
                finally:
                    routed.close()

    def test_sigstop_replica_probed_unreachable_and_routed_around(self):
        with GraphServer() as server:
            host, port = server.address
            with GraphClient(host, port) as client:
                client.create_graph("paper", labels=["A", "B"], edges=[(0, 1)])
            child = subprocess.Popen(
                [sys.executable, "-c", CHILD_REPLICA, host, str(port), "frozen"],
                stdout=subprocess.PIPE,
                env=_child_env(),
                text=True,
            )
            live = ReplicaServer(host, port, node="replica-live")
            routed = None
            try:
                line = child.stdout.readline().strip()
                assert line, "child replica never announced its address"
                rhost, rport = line.split()
                live.start()
                routed = RoutedClient(
                    (host, port),
                    replicas=[(rhost, int(rport)), live.address],
                    graph="paper",
                    probe_timeout=0.5,
                    probe_ttl=0.05,
                )
                # both replicas answer while the child is running
                wait_until(
                    lambda: sum(
                        1
                        for entry in routed.health()
                        if entry["status"] == READY
                    )
                    == 3,
                    message="all three nodes ready",
                )

                os.kill(child.pid, signal.SIGSTOP)
                try:
                    time.sleep(0.1)
                    # a direct probe times out fast instead of hanging
                    probe = GraphClient(rhost, int(rport), reconnect=False)
                    with pytest.raises((TimeoutError, ConnectionError, OSError)):
                        probe.health(timeout=0.5)
                    probe.close()

                    # the router marks it unreachable and keeps serving
                    wait_until(
                        lambda: any(
                            entry["status"] == UNREACHABLE
                            for entry in routed.health()
                        ),
                        message="frozen replica to probe unreachable",
                    )
                    for _ in range(4):
                        assert routed.count(PAPER_DSL) >= 1
                    reads = {
                        key[0]: child_metric.value
                        for key, child_metric in routed._m_reads.children()
                    }
                    frozen_label = f"{rhost}:{rport}"
                    assert reads.get(frozen_label, 0) == 0
                finally:
                    os.kill(child.pid, signal.SIGCONT)
            finally:
                if routed is not None:
                    routed.close()
                live.close()
                if child.poll() is None:
                    child.kill()
                    child.wait(timeout=30.0)
