"""Unit tests for IntBitSet, RoaringBitmap and the aggregation helpers."""

import pytest

from repro.bitmap.intbitset import IntBitSet
from repro.bitmap.ops import from_iterable, intersect_iterables, intersect_many, intersection_size, union_many
from repro.bitmap.roaring import ARRAY_TO_BITMAP_THRESHOLD, CHUNK_SIZE, RoaringBitmap


class TestIntBitSet:
    def test_construction_and_membership(self):
        bitset = IntBitSet([1, 5, 9])
        assert 5 in bitset
        assert 2 not in bitset
        assert len(bitset) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            IntBitSet([-1])
        with pytest.raises(ValueError):
            IntBitSet().add(-3)

    def test_add_discard(self):
        bitset = IntBitSet()
        bitset.add(7)
        assert 7 in bitset
        bitset.discard(7)
        assert 7 not in bitset
        bitset.discard(100)  # discarding a missing element is a no-op

    def test_iteration_sorted(self):
        assert IntBitSet([9, 1, 4]).to_list() == [1, 4, 9]

    def test_min_max(self):
        bitset = IntBitSet([3, 17, 8])
        assert bitset.min() == 3
        assert bitset.max() == 17
        with pytest.raises(ValueError):
            IntBitSet().min()
        with pytest.raises(ValueError):
            IntBitSet().max()

    def test_set_algebra(self):
        a = IntBitSet([1, 2, 3])
        b = IntBitSet([2, 3, 4])
        assert (a & b).to_list() == [2, 3]
        assert (a | b).to_list() == [1, 2, 3, 4]
        assert (a - b).to_list() == [1]
        assert (a ^ b).to_list() == [1, 4]

    def test_inplace_algebra(self):
        a = IntBitSet([1, 2, 3])
        a &= IntBitSet([2, 3])
        assert a.to_list() == [2, 3]
        a |= IntBitSet([9])
        assert 9 in a

    def test_subset_superset(self):
        assert IntBitSet([1, 2]).issubset(IntBitSet([1, 2, 3]))
        assert IntBitSet([1, 2, 3]).issuperset(IntBitSet([2]))
        assert not IntBitSet([1, 5]).issubset(IntBitSet([1, 2, 3]))

    def test_intersection_size_and_intersects(self):
        a = IntBitSet([1, 2, 3])
        b = IntBitSet([3, 4])
        assert a.intersection_size(b) == 1
        assert a.intersects(b)
        assert not a.intersects(IntBitSet([10]))

    def test_full_range(self):
        assert IntBitSet.full_range(4).to_list() == [0, 1, 2, 3]
        assert IntBitSet.full_range(0).to_list() == []

    def test_copy_independent(self):
        a = IntBitSet([1])
        b = a.copy()
        b.add(2)
        assert 2 not in a

    def test_equality_and_bool(self):
        assert IntBitSet([1, 2]) == IntBitSet([2, 1])
        assert bool(IntBitSet([0]))
        assert not bool(IntBitSet())


class TestRoaringBitmap:
    def test_basic_membership(self):
        bitmap = RoaringBitmap([3, 70_000, 5])
        assert 3 in bitmap
        assert 70_000 in bitmap
        assert 4 not in bitmap
        assert -1 not in bitmap
        assert len(bitmap) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            RoaringBitmap([-2])

    def test_iteration_sorted_across_chunks(self):
        values = [CHUNK_SIZE + 1, 5, CHUNK_SIZE * 2, 0]
        assert RoaringBitmap(values).to_list() == sorted(values)

    def test_add_discard(self):
        bitmap = RoaringBitmap()
        bitmap.add(12)
        bitmap.add(12)
        assert len(bitmap) == 1
        bitmap.discard(12)
        assert len(bitmap) == 0
        bitmap.discard(999)  # no-op
        bitmap.discard(-5)  # no-op

    def test_container_conversion_to_bitmap(self):
        # Exceed the array-container threshold within one chunk.
        values = list(range(ARRAY_TO_BITMAP_THRESHOLD + 10))
        bitmap = RoaringBitmap(values)
        assert len(bitmap) == len(values)
        assert bitmap.to_list() == values
        assert ARRAY_TO_BITMAP_THRESHOLD - 1 in bitmap

    def test_from_sorted(self):
        values = [1, 2, 3, CHUNK_SIZE + 7]
        assert RoaringBitmap.from_sorted(values).to_list() == values

    def test_intersection_mixed_containers(self):
        dense = RoaringBitmap(range(ARRAY_TO_BITMAP_THRESHOLD + 100))
        sparse = RoaringBitmap([5, 10, ARRAY_TO_BITMAP_THRESHOLD + 50, 200_000])
        result = dense & sparse
        assert result.to_list() == [5, 10, ARRAY_TO_BITMAP_THRESHOLD + 50]

    def test_union(self):
        a = RoaringBitmap([1, 2])
        b = RoaringBitmap([2, 70_000])
        assert (a | b).to_list() == [1, 2, 70_000]

    def test_difference(self):
        a = RoaringBitmap([1, 2, 3])
        b = RoaringBitmap([2])
        assert (a - b).to_list() == [1, 3]

    def test_inplace_operators(self):
        a = RoaringBitmap([1, 2, 3])
        a &= RoaringBitmap([2, 3, 4])
        assert a.to_list() == [2, 3]
        a |= RoaringBitmap([100_000])
        assert 100_000 in a

    def test_intersection_size_and_intersects(self):
        a = RoaringBitmap([1, 2, 3, 70_000])
        b = RoaringBitmap([3, 70_000])
        assert a.intersection_size(b) == 2
        assert a.intersects(b)
        assert not a.intersects(RoaringBitmap([9]))

    def test_issubset(self):
        assert RoaringBitmap([1, 70_000]).issubset(RoaringBitmap([1, 2, 70_000]))
        assert not RoaringBitmap([1, 5]).issubset(RoaringBitmap([1]))

    def test_copy_independent(self):
        a = RoaringBitmap([1])
        b = a.copy()
        b.add(9)
        assert 9 not in a

    def test_min(self):
        assert RoaringBitmap([70_000, 4]).min() == 4
        with pytest.raises(ValueError):
            RoaringBitmap().min()

    def test_batch_iter(self):
        bitmap = RoaringBitmap(range(1000))
        batches = list(bitmap.batch_iter(batch_size=256))
        assert sum(len(batch) for batch in batches) == 1000
        assert batches[0][0] == 0
        assert all(len(batch) <= 256 for batch in batches)

    def test_equality(self):
        assert RoaringBitmap([1, 2]) == RoaringBitmap([2, 1])
        assert RoaringBitmap([1]) != RoaringBitmap([2])

    def test_bool(self):
        assert not RoaringBitmap()
        assert RoaringBitmap([0])


class TestAggregation:
    def test_intersect_many_roaring(self):
        sets = [RoaringBitmap([1, 2, 3, 4]), RoaringBitmap([2, 3]), RoaringBitmap([3, 4])]
        assert intersect_many(sets).to_list() == [3]

    def test_intersect_many_intbitset(self):
        sets = [IntBitSet([1, 2, 3]), IntBitSet([2, 3]), IntBitSet([2])]
        assert intersect_many(sets).to_list() == [2]

    def test_intersect_many_short_circuit(self):
        sets = [IntBitSet([1]), IntBitSet([2]), IntBitSet([1, 2, 3])]
        assert intersect_many(sets).to_list() == []

    def test_intersect_many_empty_input(self):
        with pytest.raises(ValueError):
            intersect_many([])

    def test_union_many(self):
        sets = [RoaringBitmap([1]), RoaringBitmap([2]), RoaringBitmap([70_000])]
        assert union_many(sets).to_list() == [1, 2, 70_000]
        with pytest.raises(ValueError):
            union_many([])

    def test_intersection_size_helper(self):
        assert intersection_size(IntBitSet([1, 2]), IntBitSet([2, 3])) == 1

    def test_from_iterable(self):
        assert isinstance(from_iterable([1], kind="roaring"), RoaringBitmap)
        assert isinstance(from_iterable([1], kind="int"), IntBitSet)
        with pytest.raises(ValueError):
            from_iterable([1], kind="bogus")

    def test_intersect_iterables(self):
        assert intersect_iterables([[1, 2, 3], {2, 3}, (3,)]) == [3]
        with pytest.raises(ValueError):
            intersect_iterables([])
