"""Property-based tests: QuerySession answers must equal standalone answers.

On random generated graphs and queries, pushing a query through a
:class:`QuerySession` (cached indexes, shared context, RIG reuse) must give
exactly the answers of a from-scratch standalone matcher:

* GM and its ablations, JM and TM support hybrid queries — compared against
  a standalone :class:`GraphMatcher` on the same query;
* the comparator engines natively support the child-only query class —
  compared on the child-only variant of the query.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import random_labeled_graph
from repro.matching.gm import GraphMatcher
from repro.query.generators import random_pattern_query, to_child_only
from repro.session import QuerySession

#: GM-pipeline matchers that support the full hybrid query class.
HYBRID_MATCHERS = ("GM", "GM-S", "GM-F", "GM-NR", "JM", "TM")

#: Comparator engines: natively support the child-only query class.
CHILD_ONLY_ENGINES = ("Neo4j", "EH", "GF", "RM")


@st.composite
def graph_and_query(draw, max_nodes: int = 24):
    """A small random labelled graph plus a random connected query on it."""
    num_nodes = draw(st.integers(min_value=4, max_value=max_nodes))
    num_edges = draw(st.integers(min_value=num_nodes, max_value=4 * num_nodes))
    num_labels = draw(st.integers(min_value=2, max_value=4))
    graph_seed = draw(st.integers(min_value=0, max_value=10_000))
    query_seed = draw(st.integers(min_value=0, max_value=10_000))
    query_nodes = draw(st.integers(min_value=2, max_value=4))
    graph = random_labeled_graph(
        num_nodes=num_nodes,
        num_edges=num_edges,
        num_labels=num_labels,
        seed=graph_seed,
        name=f"prop-{graph_seed}",
    )
    query = random_pattern_query(graph, query_nodes, seed=query_seed)
    return graph, query


@settings(max_examples=15, deadline=None)
@given(data=graph_and_query())
def test_session_hybrid_matchers_equal_standalone_gm(data):
    graph, query = data
    expected = GraphMatcher(graph).match(query).occurrence_set()
    session = QuerySession(graph)
    for name in HYBRID_MATCHERS:
        report = session.query(query, engine=name)
        assert report.occurrence_set() == expected, name


@settings(max_examples=15, deadline=None)
@given(data=graph_and_query())
def test_session_engines_equal_standalone_gm_on_child_queries(data):
    graph, query = data
    child_query = to_child_only(query, name="child")
    expected = GraphMatcher(graph).match(child_query).occurrence_set()
    session = QuerySession(graph)
    for name in CHILD_ONLY_ENGINES:
        report = session.query(child_query, engine=name)
        assert report.occurrence_set() == expected, name


@settings(max_examples=10, deadline=None)
@given(data=graph_and_query(), repeats=st.integers(min_value=2, max_value=4))
def test_repeated_session_queries_are_stable_and_cached(data, repeats):
    """Cache-served repetitions return identical answers and rebuild nothing."""
    graph, query = data
    session = QuerySession(graph)
    first = session.query(query)
    misses_after_first = session.stats.total_misses
    for _ in range(repeats):
        again = session.query(query)
        assert again.occurrence_set() == first.occurrence_set()
        assert again.extra["rig_cached"] is True
    assert session.stats.total_misses == misses_after_first


@settings(max_examples=8, deadline=None)
@given(data=graph_and_query(), workers=st.integers(min_value=2, max_value=4))
def test_run_batch_parallel_equals_serial(data, workers):
    graph, query = data
    rng = random.Random(7)
    queries = {
        f"q{i}": random_pattern_query(graph, 3, seed=rng.randrange(10_000))
        for i in range(4)
    }
    queries["base"] = query
    serial = QuerySession(graph).run_batch(queries, workers=1)
    parallel = QuerySession(graph).run_batch(queries, workers=workers)
    assert serial.answers() == parallel.answers()
