"""Tests for search ordering, MJoin enumeration and the GM pipeline."""

import pytest

from repro.baselines.bruteforce import bruteforce_homomorphisms, bruteforce_isomorphisms
from repro.exceptions import MatchingError
from repro.matching.gm import GMVariant, GraphMatcher
from repro.matching.mjoin import count_matches, mjoin, mjoin_iter
from repro.matching.ordering import OrderingMethod, bj_order, jo_order, ri_order, search_order
from repro.matching.result import Budget, MatchReport, MatchStatus
from repro.query.generators import random_pattern_query, template_query
from repro.query.pattern import PatternQuery
from repro.rig.build import build_rig

from fixtures_paper import A1, A2, B0, B2, C0, C1, C2, PAPER_ANSWER


@pytest.fixture()
def paper_rig(paper_context, paper_query):
    return build_rig(paper_context, paper_query).rig


class TestOrdering:
    def test_jo_starts_with_smallest_candidate_set(self, paper_query, paper_rig):
        order = jo_order(paper_query, paper_rig)
        assert len(order) == 3
        # cos(A) and cos(B) both have 2 candidates; ties break by node id -> A first.
        assert order[0] == 0
        assert set(order) == {0, 1, 2}

    def test_jo_connected_prefixes(self, small_context, small_random_graph):
        query = random_pattern_query(small_random_graph, 6, seed=3)
        rig = build_rig(small_context, query).rig
        order = jo_order(query, rig)
        placed = set()
        for index, node in enumerate(order):
            if index:
                assert any(neighbor in placed for neighbor in query.neighbors(node))
            placed.add(node)

    def test_ri_is_data_independent(self, paper_query, paper_rig):
        order = ri_order(paper_query)
        assert sorted(order) == [0, 1, 2]
        # RI only looks at the query: repeated calls give the same order.
        assert ri_order(paper_query) == order

    def test_ri_prefers_high_connectivity(self):
        query = template_query("HQ11")  # 4-clique
        order = ri_order(query)
        assert len(order) == 4
        assert len(set(order)) == 4

    def test_bj_order_valid_permutation(self, paper_query, paper_rig):
        order = bj_order(paper_query, paper_rig)
        assert sorted(order) == [0, 1, 2]

    def test_bj_rejects_large_queries(self, paper_rig):
        big = PatternQuery(
            ["L"] * 20, [(i, i + 1, "child") for i in range(19)], name="big"
        )
        from repro.rig.graph import RuntimeIndexGraph

        rig = RuntimeIndexGraph(big)
        for node in big.nodes():
            rig.set_candidates(node, [0])
        with pytest.raises(MatchingError):
            bj_order(big, rig, max_nodes=18)

    def test_search_order_dispatch(self, paper_query, paper_rig):
        for method in OrderingMethod:
            order = search_order(paper_query, paper_rig, method)
            assert sorted(order) == [0, 1, 2]


class TestMJoin:
    def test_paper_answer(self, paper_rig, paper_answer):
        occurrences, hit_limit, _ = mjoin(paper_rig)
        assert frozenset(occurrences) == paper_answer
        assert not hit_limit

    def test_all_orders_give_same_answer(self, paper_rig, paper_query, paper_answer):
        from itertools import permutations

        for order in permutations(paper_query.nodes()):
            occurrences, _, _ = mjoin(paper_rig, order=list(order))
            assert frozenset(occurrences) == paper_answer, order

    def test_tuples_indexed_by_query_node(self, paper_rig):
        occurrences, _, _ = mjoin(paper_rig, order=[2, 1, 0])
        # Regardless of the search order, position 0 of the tuple is node A.
        assert all(occ[0] in {A1, A2} for occ in occurrences)
        assert all(occ[1] in {B0, B2} for occ in occurrences)

    def test_match_limit(self, paper_rig):
        occurrences, hit_limit, _ = mjoin(paper_rig, budget=Budget(max_matches=2))
        assert len(occurrences) == 2
        assert hit_limit

    def test_lazy_iterator(self, paper_rig, paper_answer):
        iterator = mjoin_iter(paper_rig)
        first = next(iterator)
        assert first in paper_answer
        rest = set(iterator)
        assert rest | {first} == set(paper_answer)

    def test_count_matches(self, paper_rig):
        assert count_matches(paper_rig) == 4
        assert count_matches(paper_rig, budget=Budget(max_matches=3)) == 3

    def test_empty_rig_yields_nothing(self, paper_context):
        query = PatternQuery(["Z", "A"], [(0, 1, "child")])
        rig = build_rig(paper_context, query).rig
        assert mjoin(rig)[0] == []

    def test_injective_enumeration(self, paper_context, paper_query, paper_graph):
        rig = build_rig(paper_context, paper_query).rig
        occurrences, _, _ = mjoin(rig, injective=True)
        expected = set(bruteforce_isomorphisms(paper_graph, paper_query))
        assert set(occurrences) == expected
        # All paper-answer occurrences are injective here, so they coincide.
        assert set(occurrences) == set(PAPER_ANSWER)

    def test_single_node_query(self, paper_context):
        query = PatternQuery(["A"], [])
        rig = build_rig(paper_context, query).rig
        occurrences, _, _ = mjoin(rig)
        assert {occ[0] for occ in occurrences} == set(paper_context.graph.inverted_list("A"))


class TestGraphMatcher:
    def test_gm_reproduces_paper_answer(self, paper_graph, paper_context, paper_query, paper_answer):
        matcher = GraphMatcher(paper_graph, context=paper_context)
        report = matcher.match(paper_query)
        assert report.occurrence_set() == paper_answer
        assert report.status is MatchStatus.OK
        assert report.algorithm == "GM"
        assert report.num_matches == 4

    def test_all_variants_agree(self, paper_graph, paper_context, paper_query, paper_answer):
        for variant in GMVariant:
            matcher = GraphMatcher(paper_graph, context=paper_context, variant=variant)
            assert matcher.match(paper_query).occurrence_set() == paper_answer, variant

    def test_all_orderings_agree(self, paper_graph, paper_context, paper_query, paper_answer):
        for ordering in OrderingMethod:
            matcher = GraphMatcher(paper_graph, context=paper_context, ordering=ordering)
            assert matcher.match(paper_query).occurrence_set() == paper_answer, ordering

    def test_algorithm_name_includes_ordering(self, paper_graph, paper_context):
        matcher = GraphMatcher(paper_graph, context=paper_context, ordering=OrderingMethod.RI)
        assert matcher.algorithm_name() == "GM-RI"
        assert GraphMatcher(paper_graph, context=paper_context).algorithm_name() == "GM"

    def test_empty_answer_query(self, paper_graph, paper_context):
        query = PatternQuery(["C", "A"], [(0, 1, "child")])  # no C -> A edges
        report = GraphMatcher(paper_graph, context=paper_context).match(query)
        assert report.num_matches == 0
        assert report.status is MatchStatus.OK
        assert report.extra.get("empty_rig") is True

    def test_match_limit_status(self, paper_graph, paper_context, paper_query):
        matcher = GraphMatcher(paper_graph, context=paper_context, budget=Budget(max_matches=1))
        report = matcher.match(paper_query)
        assert report.status is MatchStatus.MATCH_LIMIT
        assert report.num_matches == 1
        assert report.solved

    def test_injective_match(self, paper_graph, paper_context, paper_query):
        matcher = GraphMatcher(paper_graph, context=paper_context)
        report = matcher.match(paper_query, injective=True)
        expected = set(bruteforce_isomorphisms(paper_graph, paper_query))
        assert report.occurrence_set() == frozenset(expected)

    def test_count_convenience(self, paper_graph, paper_context, paper_query):
        assert GraphMatcher(paper_graph, context=paper_context).count(paper_query) == 4

    def test_explicit_order_override(self, paper_graph, paper_context, paper_query, paper_answer):
        matcher = GraphMatcher(paper_graph, context=paper_context)
        report = matcher.match(paper_query, order=[2, 0, 1])
        assert report.occurrence_set() == paper_answer

    def test_build_rig_exposed(self, paper_graph, paper_context, paper_query):
        matcher = GraphMatcher(paper_graph, context=paper_context)
        build_report = matcher.build_rig(paper_query)
        assert not build_report.rig.is_empty()

    def test_report_extras(self, paper_graph, paper_context, paper_query):
        report = GraphMatcher(paper_graph, context=paper_context).match(paper_query)
        assert report.extra["rig_nodes"] == 7
        assert "search_order" in report.extra
        assert report.total_seconds >= 0.0
        assert "GM" in report.summary()

    def test_timeout_reported(self, small_random_graph):
        from repro.query.generators import random_pattern_query, to_descendant_only

        query = to_descendant_only(random_pattern_query(small_random_graph, 5, seed=1))
        matcher = GraphMatcher(
            small_random_graph,
            budget=Budget(max_matches=None, time_limit_seconds=0.0),
        )
        report = matcher.match(query)
        # With a zero time budget, either the RIG is empty fast or we time out.
        assert report.status in (MatchStatus.TIMEOUT, MatchStatus.OK)


class TestBudgetAndReport:
    def test_budget_clock_matches(self):
        budget = Budget(max_matches=5)
        clock = budget.start_clock()
        assert not clock.check_matches(4)
        assert clock.check_matches(5)

    def test_budget_clock_intermediate(self):
        from repro.exceptions import MemoryBudgetExceeded

        clock = Budget(max_intermediate_results=10).start_clock()
        clock.check_intermediate(10)
        with pytest.raises(MemoryBudgetExceeded):
            clock.check_intermediate(11)

    def test_budget_unlimited(self):
        clock = Budget(max_matches=None, max_intermediate_results=None, time_limit_seconds=None).start_clock()
        assert not clock.check_matches(10**9)
        clock.check_intermediate(10**9)
        clock.check_time()

    def test_status_solved_classification(self):
        assert MatchStatus.OK.is_solved()
        assert MatchStatus.MATCH_LIMIT.is_solved()
        assert not MatchStatus.TIMEOUT.is_solved()
        assert not MatchStatus.OUT_OF_MEMORY.is_solved()

    def test_report_properties(self):
        report = MatchReport(
            query_name="q",
            algorithm="GM",
            status=MatchStatus.OK,
            occurrences=[(1, 2)],
            num_matches=1,
            matching_seconds=0.5,
            enumeration_seconds=0.25,
        )
        assert report.total_seconds == pytest.approx(0.75)
        assert report.solved
        assert report.occurrence_set() == frozenset({(1, 2)})
