"""Tests for the new patch paths (expanded graph, catalog), stale-index
errors, and cooperative cancellation checkpoints."""

import random

import pytest

from fixtures_paper import A1, B0, C0
from repro.dynamic import GraphDelta, MutableDataGraph, patch_expanded_graph
from repro.engines.base import expand_descendant_edges
from repro.engines.binary_join import BinaryJoinEngine
from repro.engines.wcoj import build_catalog, patch_catalog
from repro.exceptions import QueryCancelled, StaleIndexError
from repro.graph.generators import random_labeled_graph
from repro.matching.result import Budget, BudgetClock, MatchStatus
from repro.reachability.transitive_closure import TransitiveClosureIndex
from repro.session import QuerySession


def _random_insert_delta(graph, seed, num_nodes=2, num_edges=6):
    rng = random.Random(seed)
    delta = GraphDelta.for_graph(graph)
    new_nodes = [
        delta.add_node(rng.choice(graph.label_alphabet())) for _ in range(num_nodes)
    ]
    total = graph.num_nodes + len(new_nodes)
    for _ in range(num_edges):
        a, b = rng.randrange(total), rng.randrange(total)
        if a != b:
            delta.add_edge(a, b)
    return delta


class TestCatalogPatch:
    @pytest.mark.parametrize("seed", range(8))
    def test_patched_equals_rebuilt(self, seed):
        graph = random_labeled_graph(
            num_nodes=16, num_edges=40, num_labels=3, seed=seed
        )
        delta = _random_insert_delta(graph, seed)
        overlay = MutableDataGraph(graph, delta)
        effective = overlay.delta_since_base()
        catalog = build_catalog(graph)
        assert patch_catalog(catalog, graph, effective)
        rebuilt = build_catalog(overlay.materialize())
        assert catalog.edge_counts == rebuilt.edge_counts
        assert catalog.path_counts == rebuilt.path_counts

    def test_self_loop_paths_counted_once(self):
        graph = random_labeled_graph(num_nodes=6, num_edges=8, num_labels=2, seed=3)
        delta = GraphDelta.for_graph(graph).add_edge(0, 0)
        overlay = MutableDataGraph(graph, delta)
        effective = overlay.delta_since_base()
        catalog = build_catalog(graph)
        assert patch_catalog(catalog, graph, effective)
        rebuilt = build_catalog(overlay.materialize())
        assert catalog.path_counts == rebuilt.path_counts

    def test_removal_delta_rejected(self, paper_graph):
        catalog = build_catalog(paper_graph)
        before = dict(catalog.edge_counts)
        delta = GraphDelta.for_graph(paper_graph).remove_edge(A1, B0)
        assert not patch_catalog(catalog, paper_graph, delta)
        assert catalog.edge_counts == before  # untouched on rejection

    def test_truncated_catalog_rejected(self, paper_graph):
        catalog = build_catalog(paper_graph)
        catalog.truncated = True
        delta = GraphDelta.for_graph(paper_graph).add_edge(A1, 4)
        assert not patch_catalog(catalog, paper_graph, delta)

    def test_copy_is_independent(self, paper_graph):
        catalog = build_catalog(paper_graph)
        clone = catalog.copy()
        delta = GraphDelta.for_graph(paper_graph).add_edge(A1, 4)
        assert patch_catalog(clone, paper_graph, delta)
        assert clone.edge_counts != catalog.edge_counts


class TestExpandedGraphPatch:
    @pytest.mark.parametrize("seed", range(8))
    def test_patched_equals_rebuilt(self, seed):
        graph = random_labeled_graph(
            num_nodes=14, num_edges=30, num_labels=3, seed=seed + 50
        )
        closure = TransitiveClosureIndex(graph)
        expanded, _seconds = expand_descendant_edges(graph, closure=closure)
        delta = _random_insert_delta(graph, seed + 50)
        overlay = MutableDataGraph(graph, delta)
        effective = overlay.delta_since_base()
        if not effective:
            pytest.skip("degenerate delta")
        new_graph = overlay.materialize()
        assert closure.apply_delta(new_graph, effective)
        patched = patch_expanded_graph(
            expanded, new_graph, effective, closure.last_patch_additions()
        )
        rebuilt, _seconds = expand_descendant_edges(new_graph)
        assert patched == rebuilt
        assert patched.version == new_graph.version

    def test_removal_delta_rejected(self, paper_graph):
        expanded, _seconds = expand_descendant_edges(paper_graph)
        delta = GraphDelta.for_graph(paper_graph).remove_edge(A1, B0)
        assert patch_expanded_graph(expanded, paper_graph, delta, []) is None


class TestSessionApplyPatchesDerivedArtifacts:
    def _warm(self, session, paper_query):
        session.query(paper_query)
        session.transitive_closure
        session.expanded_graph
        session.catalog
        return session

    def test_insert_only_apply_patches_expanded_and_catalog(
        self, paper_graph, paper_query
    ):
        session = self._warm(QuerySession(paper_graph), paper_query)
        delta = GraphDelta.for_graph(session.graph)
        node = delta.add_node("A")
        delta.add_edge(node, B0)
        delta.add_edge(node, C0)
        report = session.apply(delta)
        assert "expanded_graph" in report.patched
        assert "catalog" in report.patched
        assert session.stats.patches("expanded_graph") == 1
        assert session.stats.patches("catalog") == 1
        assert session.stats.invalidations("expanded_graph") == 0
        # patched artifacts equal a cold rebuild on the new graph
        cold = QuerySession(session.graph)
        assert session.expanded_graph == cold.expanded_graph
        assert session.catalog.edge_counts == cold.catalog.edge_counts
        assert session.catalog.path_counts == cold.catalog.path_counts
        # and the engines that consume them agree with the cold session
        for engine in ("Neo4j", "GF"):
            assert (
                session.query(paper_query, engine=engine).occurrence_set()
                == cold.query(paper_query, engine=engine).occurrence_set()
            ), engine

    def test_removal_apply_invalidates_expanded_and_catalog(
        self, paper_graph, paper_query
    ):
        session = self._warm(QuerySession(paper_graph), paper_query)
        delta = GraphDelta.for_graph(session.graph).remove_edge(A1, B0)
        report = session.apply(delta)
        assert "expanded_graph" in report.invalidated
        assert "catalog" in report.invalidated
        assert session.stats.invalidations("expanded_graph") == 1
        assert session.stats.invalidations("catalog") == 1
        # lazily rebuilt artifacts still serve correct answers
        cold = QuerySession(session.graph)
        for engine in ("Neo4j", "GF"):
            assert (
                session.query(paper_query, engine=engine).occurrence_set()
                == cold.query(paper_query, engine=engine).occurrence_set()
            ), engine


class TestStaleIndexError:
    def test_constructor_injection_names_versions(self, paper_graph):
        expanded, _seconds = expand_descendant_edges(paper_graph)
        delta = GraphDelta.for_graph(paper_graph)
        node = delta.add_node("A")
        delta.add_edge(node, B0)
        patched = MutableDataGraph(paper_graph, delta).materialize()
        with pytest.raises(StaleIndexError, match="stale") as excinfo:
            BinaryJoinEngine(patched, expanded_graph=expanded)
        error = excinfo.value
        assert error.expected_version == patched.version == 1
        assert error.found_version == expanded.version == 0
        assert "version 1" in str(error) and "version 0" in str(error)

    def test_lazy_provider_injection(self, paper_graph, paper_query):
        expanded, _seconds = expand_descendant_edges(paper_graph)
        delta = GraphDelta.for_graph(paper_graph)
        node = delta.add_node("A")
        delta.add_edge(node, B0)
        patched = MutableDataGraph(paper_graph, delta).materialize()
        engine = BinaryJoinEngine(patched, expanded_graph=lambda: expanded)
        with pytest.raises(StaleIndexError):
            engine.match(paper_query)

    def test_subclasses_engine_error(self):
        from repro.exceptions import EngineError

        assert issubclass(StaleIndexError, EngineError)


class TestCancellationCheckpoints:
    class _SetEvent:
        @staticmethod
        def is_set() -> bool:
            return True

    def test_budget_clock_raises_on_cancel(self):
        budget = Budget(cancel_event=self._SetEvent())
        clock = BudgetClock(budget, check_interval=1)
        with pytest.raises(QueryCancelled):
            clock.check_time()

    def test_with_deadline_clamps_time_limit(self):
        import time

        budget = Budget(time_limit_seconds=100.0)
        clamped = budget.with_deadline(time.monotonic() + 1.0)
        assert clamped.time_limit_seconds <= 1.0
        assert budget.with_deadline(None) is budget
        expired = budget.with_deadline(time.monotonic() - 5.0)
        assert expired.time_limit_seconds == 0.0

    def test_engine_reports_cancelled_status(self, paper_graph, paper_query, monkeypatch):
        monkeypatch.setattr(
            Budget, "start_clock", lambda self: BudgetClock(self, check_interval=1)
        )
        budget = Budget(cancel_event=self._SetEvent())
        engine = BinaryJoinEngine(paper_graph, budget=budget)
        result = engine.match(paper_query, budget=budget)
        assert result.report.status is MatchStatus.CANCELLED
        assert not result.report.solved

    def test_gm_reports_cancelled_status(self, paper_graph, paper_query, monkeypatch):
        from repro.matching.gm import GraphMatcher

        monkeypatch.setattr(
            Budget, "start_clock", lambda self: BudgetClock(self, check_interval=1)
        )
        budget = Budget(cancel_event=self._SetEvent())
        matcher = GraphMatcher(paper_graph, budget=budget)
        report = matcher.match(paper_query, budget=budget)
        assert report.status is MatchStatus.CANCELLED
