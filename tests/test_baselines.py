"""Tests for the brute-force oracle and the JM / TM / ISO baselines."""

import pytest

from repro.baselines.bruteforce import bruteforce_homomorphisms, bruteforce_isomorphisms
from repro.baselines.iso import ISOMatcher
from repro.baselines.jm import JMMatcher
from repro.baselines.tm import TMMatcher
from repro.matching.result import Budget, MatchStatus
from repro.query.generators import to_child_only
from repro.query.pattern import PatternQuery

from fixtures_paper import A1, A2, B0, B2, C0, C1, C2


class TestBruteForce:
    def test_homomorphisms_match_paper_answer(self, paper_graph, paper_query, paper_answer):
        assert frozenset(bruteforce_homomorphisms(paper_graph, paper_query)) == paper_answer

    def test_isomorphisms_subset_of_homomorphisms(self, paper_graph, paper_query):
        homomorphisms = set(bruteforce_homomorphisms(paper_graph, paper_query))
        isomorphisms = set(bruteforce_isomorphisms(paper_graph, paper_query))
        assert isomorphisms <= homomorphisms

    def test_homomorphism_allows_node_reuse(self):
        from repro.graph.digraph import DataGraph

        # One data node with label A and a self loop; query A -> A.
        graph = DataGraph(["A"], [(0, 0)])
        query = PatternQuery(["A", "A"], [(0, 1, "child")])
        assert bruteforce_homomorphisms(graph, query) == [(0, 0)]
        assert bruteforce_isomorphisms(graph, query) == []

    def test_limit(self, paper_graph, paper_query):
        assert len(bruteforce_homomorphisms(paper_graph, paper_query, limit=2)) == 2


class TestJMMatcher:
    def test_paper_answer(self, paper_graph, paper_context, paper_query, paper_answer):
        report = JMMatcher(paper_graph, context=paper_context).match(paper_query)
        assert report.occurrence_set() == paper_answer
        assert report.algorithm == "JM"
        assert report.status is MatchStatus.OK

    def test_reports_plan_statistics(self, paper_graph, paper_context, paper_query):
        report = JMMatcher(paper_graph, context=paper_context).match(paper_query)
        assert report.extra["plans_considered"] >= 1
        assert report.extra["peak_intermediate"] >= report.num_matches

    def test_single_node_query(self, paper_graph, paper_context):
        report = JMMatcher(paper_graph, context=paper_context).match(PatternQuery(["B"], []))
        assert report.num_matches == 4

    def test_out_of_memory_on_tiny_budget(self, small_random_graph):
        from repro.query.generators import random_pattern_query, to_descendant_only

        query = to_descendant_only(random_pattern_query(small_random_graph, 5, seed=2))
        matcher = JMMatcher(
            small_random_graph, budget=Budget(max_intermediate_results=3, max_matches=None)
        )
        report = matcher.match(query)
        assert report.status in (MatchStatus.OUT_OF_MEMORY, MatchStatus.OK)
        # With such a small cap the join must overflow unless the answer is trivially small.
        if report.status is MatchStatus.OK:
            assert report.extra["peak_intermediate"] <= 3

    def test_match_limit(self, paper_graph, paper_context, paper_query):
        report = JMMatcher(paper_graph, context=paper_context, budget=Budget(max_matches=2)).match(paper_query)
        assert report.num_matches == 2
        assert report.status is MatchStatus.MATCH_LIMIT

    def test_without_prefilter_and_reduction(self, paper_graph, paper_context, paper_query, paper_answer):
        matcher = JMMatcher(
            paper_graph, context=paper_context, prefilter=False, apply_transitive_reduction=False
        )
        assert matcher.match(paper_query).occurrence_set() == paper_answer

    def test_greedy_plan_for_large_queries(self, paper_graph, paper_context, paper_query, paper_answer):
        matcher = JMMatcher(paper_graph, context=paper_context, dp_plan_node_limit=1)
        report = matcher.match(paper_query)
        assert report.occurrence_set() == paper_answer
        assert report.extra["plans_considered"] == 1


class TestTMMatcher:
    def test_paper_answer(self, paper_graph, paper_context, paper_query, paper_answer):
        report = TMMatcher(paper_graph, context=paper_context).match(paper_query)
        assert report.occurrence_set() == paper_answer
        assert report.algorithm == "TM"

    def test_spanning_tree_split(self, paper_query):
        tree, non_tree = TMMatcher.spanning_tree(paper_query)
        assert len(tree) == 2
        assert len(non_tree) == 1
        covered = set()
        for edge in tree:
            covered.update(edge.endpoints())
        assert covered == {0, 1, 2}

    def test_tree_solution_count_at_least_answer(self, paper_graph, paper_context, paper_query, paper_answer):
        report = TMMatcher(paper_graph, context=paper_context).match(paper_query)
        assert report.extra["tree_solutions"] >= len(paper_answer)
        assert report.extra["non_tree_edges"] == 1

    def test_match_limit(self, paper_graph, paper_context, paper_query):
        report = TMMatcher(paper_graph, context=paper_context, budget=Budget(max_matches=1)).match(paper_query)
        assert report.num_matches == 1
        assert report.status is MatchStatus.MATCH_LIMIT

    def test_out_of_memory_on_tree_solutions(self, paper_graph, paper_context, paper_query):
        matcher = TMMatcher(
            paper_graph, context=paper_context, budget=Budget(max_intermediate_results=1, max_matches=None)
        )
        report = matcher.match(paper_query)
        assert report.status is MatchStatus.OUT_OF_MEMORY

    def test_tree_only_query(self, paper_graph, paper_context, paper_answer):
        # Drop the non-tree edge; TM should handle a pure tree query.
        query = PatternQuery(["A", "B", "C"], [(0, 1, "child"), (0, 2, "child")], name="tree")
        report = TMMatcher(paper_graph, context=paper_context).match(query)
        expected = frozenset(bruteforce_homomorphisms(paper_graph, query))
        assert report.occurrence_set() == expected

    def test_single_node_query(self, paper_graph, paper_context):
        report = TMMatcher(paper_graph, context=paper_context).match(PatternQuery(["C"], []))
        assert report.num_matches == 3

    def test_without_prefilter(self, paper_graph, paper_context, paper_query, paper_answer):
        matcher = TMMatcher(paper_graph, context=paper_context, prefilter=False)
        assert matcher.match(paper_query).occurrence_set() == paper_answer


class TestISOMatcher:
    def test_matches_bruteforce_isomorphisms(self, paper_graph, paper_context, paper_query):
        report = ISOMatcher(paper_graph, context=paper_context).match(paper_query)
        expected = frozenset(bruteforce_isomorphisms(paper_graph, paper_query))
        assert report.occurrence_set() == expected
        assert report.algorithm == "ISO"

    def test_child_only_query(self, paper_graph, paper_context, paper_query):
        query = to_child_only(paper_query, name="CQ-paper")
        report = ISOMatcher(paper_graph, context=paper_context).match(query)
        expected = frozenset(bruteforce_isomorphisms(paper_graph, query))
        assert report.occurrence_set() == expected

    def test_injectivity_enforced(self):
        from repro.graph.digraph import DataGraph

        graph = DataGraph(["A", "A"], [(0, 1), (1, 0)])
        query = PatternQuery(["A", "A"], [(0, 1, "child")])
        report = ISOMatcher(graph).match(query)
        # (0,1) and (1,0) are injective; (0,0)/(1,1) are not possible anyway.
        assert report.occurrence_set() == frozenset({(0, 1), (1, 0)})

    def test_match_limit(self, small_random_graph):
        from repro.query.generators import random_pattern_query

        query = to_child_only(random_pattern_query(small_random_graph, 3, seed=8))
        report = ISOMatcher(small_random_graph, budget=Budget(max_matches=1)).match(query)
        assert report.num_matches <= 1
