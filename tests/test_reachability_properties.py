"""Property-based tests: every reachability index must agree with BFS truth."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.digraph import DataGraph
from repro.reachability.bfl import BloomFilterLabeling
from repro.reachability.interval import IntervalIndex
from repro.reachability.transitive_closure import TransitiveClosureIndex


@st.composite
def random_graphs(draw, max_nodes: int = 18, max_extra_edges: int = 40):
    """Small random directed graphs (possibly cyclic, possibly disconnected)."""
    num_nodes = draw(st.integers(min_value=1, max_value=max_nodes))
    num_edges = draw(st.integers(min_value=0, max_value=max_extra_edges))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    edges = set()
    for _ in range(num_edges):
        u = rng.randrange(num_nodes)
        v = rng.randrange(num_nodes)
        if u != v:
            edges.add((u, v))
    return DataGraph(["X"] * num_nodes, sorted(edges), name=f"prop-{seed}")


@settings(max_examples=40, deadline=None)
@given(graph=random_graphs())
def test_transitive_closure_matches_bfs(graph):
    index = TransitiveClosureIndex(graph)
    for u in graph.nodes():
        for v in graph.nodes():
            assert index.reaches(u, v) == graph.reaches_bfs(u, v)


@settings(max_examples=40, deadline=None)
@given(graph=random_graphs())
def test_interval_index_matches_bfs(graph):
    index = IntervalIndex(graph)
    for u in graph.nodes():
        for v in graph.nodes():
            assert index.reaches(u, v) == graph.reaches_bfs(u, v)


@settings(max_examples=40, deadline=None)
@given(graph=random_graphs())
def test_bfl_matches_bfs(graph):
    index = BloomFilterLabeling(graph)
    for u in graph.nodes():
        for v in graph.nodes():
            assert index.reaches(u, v) == graph.reaches_bfs(u, v)


@settings(max_examples=30, deadline=None)
@given(graph=random_graphs())
def test_interval_negative_cut_sound(graph):
    index = IntervalIndex(graph)
    for u in graph.nodes():
        for v in graph.nodes():
            if index.definitely_not_reaches(u, v):
                assert not graph.reaches_bfs(u, v)


@settings(max_examples=30, deadline=None)
@given(graph=random_graphs())
def test_strict_reachability_consistency(graph):
    """reaches_strict(u, u) holds exactly when u lies on a directed cycle."""
    index = BloomFilterLabeling(graph)
    for u in graph.nodes():
        on_cycle = any(graph.reaches_bfs(child, u) for child in graph.successors(u))
        assert index.reaches_strict(u, u) == on_cycle
