"""Property-based tests: bitmap algebra must agree with Python sets."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitmap.intbitset import IntBitSet
from repro.bitmap.ops import intersect_many, union_many
from repro.bitmap.roaring import RoaringBitmap

small_ints = st.sets(st.integers(min_value=0, max_value=2_000), max_size=200)
# Values spanning multiple Roaring chunks.
chunky_ints = st.sets(st.integers(min_value=0, max_value=200_000), max_size=200)


@settings(max_examples=60, deadline=None)
@given(values=chunky_ints)
def test_roaring_roundtrip(values):
    assert RoaringBitmap(values).to_list() == sorted(values)


@settings(max_examples=60, deadline=None)
@given(a=chunky_ints, b=chunky_ints)
def test_roaring_intersection_matches_sets(a, b):
    assert set(RoaringBitmap(a) & RoaringBitmap(b)) == (a & b)


@settings(max_examples=60, deadline=None)
@given(a=chunky_ints, b=chunky_ints)
def test_roaring_union_matches_sets(a, b):
    assert set(RoaringBitmap(a) | RoaringBitmap(b)) == (a | b)


@settings(max_examples=60, deadline=None)
@given(a=chunky_ints, b=chunky_ints)
def test_roaring_difference_matches_sets(a, b):
    assert set(RoaringBitmap(a) - RoaringBitmap(b)) == (a - b)


@settings(max_examples=60, deadline=None)
@given(a=chunky_ints, b=chunky_ints)
def test_roaring_intersection_size(a, b):
    assert RoaringBitmap(a).intersection_size(RoaringBitmap(b)) == len(a & b)


@settings(max_examples=60, deadline=None)
@given(a=chunky_ints, b=chunky_ints)
def test_roaring_membership_after_updates(a, b):
    bitmap = RoaringBitmap(a)
    for value in b:
        bitmap.add(value)
    for value in list(a)[: len(a) // 2]:
        bitmap.discard(value)
    expected = (a | b) - set(list(a)[: len(a) // 2])
    assert set(bitmap) == expected


@settings(max_examples=60, deadline=None)
@given(a=small_ints, b=small_ints)
def test_intbitset_algebra_matches_sets(a, b):
    bit_a, bit_b = IntBitSet(a), IntBitSet(b)
    assert set(bit_a & bit_b) == (a & b)
    assert set(bit_a | bit_b) == (a | b)
    assert set(bit_a - bit_b) == (a - b)
    assert set(bit_a ^ bit_b) == (a ^ b)
    assert bit_a.issubset(bit_b) == a.issubset(b)


@settings(max_examples=40, deadline=None)
@given(operands=st.lists(small_ints, min_size=1, max_size=5))
def test_multiway_aggregation_matches_sets(operands):
    bitmaps = [IntBitSet(values) for values in operands]
    expected_intersection = set.intersection(*operands) if operands else set()
    expected_union = set.union(*operands) if operands else set()
    assert set(intersect_many(bitmaps)) == expected_intersection
    assert set(union_many(bitmaps)) == expected_union


@settings(max_examples=40, deadline=None)
@given(values=chunky_ints)
def test_roaring_length_consistent(values):
    bitmap = RoaringBitmap(values)
    assert len(bitmap) == len(values)
    assert bool(bitmap) == bool(values)
