"""Tests for the unified :class:`repro.GraphDB` facade.

The facade must compose — not reimplement — the underlying layers: answers
through ``GraphDB`` equal answers through the historical entry points
(``GraphMatcher``, ``QuerySession``, ``VersionedGraphStore`` +
``QueryService``), and every lifecycle guarantee of those layers (version
pinning, pin release, admission control) holds when reached through it.
"""

from __future__ import annotations

import pytest

from fixtures_paper import PAPER_ANSWER, build_paper_graph, build_paper_query
from repro import (
    Budget,
    DataGraph,
    GraphDB,
    GraphMatcher,
    MatchStream,
    QuerySession,
    ServiceConfig,
    StreamingResult,
    VersionedGraphStore,
    parse_query,
)

PERSON_PROJECT = """
node p Person
node j Project
edge p -> j
"""


class TestOpen:
    def test_open_empty_and_ingest(self):
        with GraphDB.open() as db:
            assert db.num_nodes == 0
            report = db.ingest(
                labels=["Person", "Person", "Project"], edges=[(0, 2), (1, 2)]
            )
            assert report.new_version == 1
            assert db.num_nodes == 3
            assert db.count(PERSON_PROJECT) == 2

    def test_open_data_graph(self):
        with GraphDB.open(build_paper_graph()) as db:
            assert db.graph.name == "paper-example"
            assert db.query(build_paper_query()).occurrence_set() == PAPER_ANSWER

    def test_open_existing_session_seeds_first_epoch(self):
        session = QuerySession(build_paper_graph())
        session.query(build_paper_query())  # warm the artifacts
        with GraphDB.open(session) as db:
            report = db.query(build_paper_query())
            assert report.occurrence_set() == PAPER_ANSWER
        assert session.frozen  # the store took ownership

    def test_open_external_store_is_not_closed(self):
        store = VersionedGraphStore(build_paper_graph())
        with GraphDB.open(store) as db:
            assert db.head_version == 0
        # The database did not own the store: it must still serve pins.
        with store.pin() as snap:
            assert snap.version == 0
        store.close()

    def test_open_path_round_trip(self, tmp_path):
        path = str(tmp_path / "db.json")
        with GraphDB.open(build_paper_graph()) as db:
            db.save(path)
        with GraphDB.open(path) as restored:
            assert restored.num_nodes == build_paper_graph().num_nodes
            assert (
                restored.query(build_paper_query()).occurrence_set() == PAPER_ANSWER
            )

    def test_open_rejects_unknown_source(self):
        with pytest.raises(TypeError):
            GraphDB.open(42)

    def test_from_edges(self):
        with GraphDB.from_edges(["A", "B"], [(0, 1)]) as db:
            assert db.count("node a A\nnode b B\nedge a -> b") == 1


class TestQuerySurface:
    def test_str_queries_are_parsed(self):
        with GraphDB.open(build_paper_graph()) as db:
            text = "node a A\nnode b B\nnode c C\nedge a -> b\nedge a -> c\nedge b => c"
            report = db.query(text, name="Q-paper-text")
            assert report.occurrence_set() == PAPER_ANSWER
            assert report.query_name == "Q-paper-text"

    def test_matches_legacy_graph_matcher(self):
        graph = build_paper_graph()
        legacy = GraphMatcher(graph).match(build_paper_query())
        with GraphDB.open(graph) as db:
            unified = db.query(build_paper_query())
        assert unified.occurrence_set() == legacy.occurrence_set()
        assert unified.status == legacy.status

    def test_stream_is_a_streaming_result(self):
        with GraphDB.open(build_paper_graph()) as db:
            result = db.stream(build_paper_query(), page_size=2)
            assert isinstance(result, StreamingResult)
            with result:
                pages = list(result.pages(timeout=30.0))
            assert {occ for page in pages for occ in page} == PAPER_ANSWER
            assert db.stats()["pinned_epochs"] == 0

    def test_count_honours_budget_short_circuit(self):
        with GraphDB.open(build_paper_graph()) as db:
            assert db.count(build_paper_query()) == len(PAPER_ANSWER)
            assert db.count(build_paper_query(), budget=Budget(max_matches=2)) == 2

    def test_run_batch_pins_one_version(self):
        with GraphDB.open(build_paper_graph()) as db:
            report = db.run_batch({"q1": build_paper_query(), "q2": build_paper_query()})
            assert report.version == 0
            assert report.num_queries == 2


class TestWriteSurface:
    def test_ingest_then_apply_delta(self):
        with GraphDB.open(build_paper_graph()) as db:
            base_answer = db.count(build_paper_query())
            delta = db.delta()
            c_new = delta.add_node("C")
            delta.add_edge(1, c_new)  # A1 -> new C (direct)
            delta.add_edge(3, c_new)  # B0 -> new C: (A1, B0, c_new) matches
            report = db.apply(delta)
            assert report.new_version == 1
            assert db.head_version == 1
            assert db.count(build_paper_query()) > base_answer

    def test_stream_stays_pinned_across_ingest(self):
        with GraphDB.open(build_paper_graph()) as db:
            result = db.stream(build_paper_query(), page_size=1)
            new_c = build_paper_graph().num_nodes
            db.ingest(labels=["C"], edges=[(1, new_c), (3, new_c)])
            with result:
                streamed = {occ for page in result.pages(timeout=30.0) for occ in page}
            assert result.version == 0
            assert streamed == PAPER_ANSWER  # pre-ingest answer, pinned
            assert db.count(build_paper_query()) > len(PAPER_ANSWER)

    def test_apply_async_folds_in_order(self):
        # Edge-only deltas stay valid against a moving head (node-adding
        # deltas racing the writer queue need rebasing — a ROADMAP item).
        new_edges = [(0, 4), (2, 4), (6, 9)]
        with GraphDB.open(build_paper_graph()) as db:
            futures = []
            for edge in new_edges:
                delta = db.delta()
                delta.add_edge(*edge)
                futures.append(db.apply_async(delta))
            reports = [future.result(timeout=30.0) for future in futures]
            assert [r.new_version for r in reports] == [1, 2, 3]
            assert db.head_version == 3


class TestIntrospection:
    def test_stats_merge_service_and_store_gauges(self):
        with GraphDB.open(build_paper_graph()) as db:
            db.query(build_paper_query())
            stats = db.stats()
            assert stats["completed"] == 1
            assert stats["head_version"] == 0
            assert "store" in stats and "applies" in stats["store"]

    def test_pin_gives_repeated_consistent_reads(self):
        with GraphDB.open(build_paper_graph()) as db:
            with db.pin() as snap:
                first = snap.query(build_paper_query()).occurrence_set()
                new_c = db.num_nodes
                db.ingest(labels=["C"], edges=[(1, new_c), (3, new_c)])
                second = snap.query(build_paper_query()).occurrence_set()
            assert first == second == PAPER_ANSWER

    def test_old_import_paths_still_work(self):
        # The facade is additive: every historical symbol stays importable.
        import repro

        for name in (
            "DataGraph",
            "GraphBuilder",
            "GraphMatcher",
            "QuerySession",
            "VersionedGraphStore",
            "QueryService",
            "StreamingResult",
            "MatchStream",
            "GraphDB",
            "mjoin_iter",
        ):
            assert hasattr(repro, name), name

    def test_facade_config_reaches_service(self):
        with GraphDB.open(
            build_paper_graph(), config=ServiceConfig(workers=3)
        ) as db:
            assert db.service.config.workers == 3
