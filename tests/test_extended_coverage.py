"""Additional coverage: exceptions, set-kind variants, ordering properties,
approximate simulation, engine details and the remaining experiment drivers."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.experiments import (
    fig09_child_queries,
    fig10_label_scaling,
    fig11_size_scaling,
    fig15_transitive_reduction,
    fig16_wcoj_engine,
    fig17_rm_human,
    fig18_reachability_engines,
    table5_engines,
)
from repro.exceptions import (
    BudgetExceeded,
    MemoryBudgetExceeded,
    ReproError,
    TimeoutExceeded,
)
from repro.graph.generators import random_labeled_graph
from repro.matching.gm import GraphMatcher
from repro.matching.mjoin import mjoin
from repro.matching.ordering import bj_order, jo_order, ri_order
from repro.matching.result import Budget
from repro.query.generators import random_pattern_query
from repro.rig.build import RIGOptions, build_rig
from repro.simulation.context import MatchContext
from repro.simulation.fbsim import SimulationOptions, fbsim

TINY_BUDGET = Budget(max_matches=200, time_limit_seconds=5.0, max_intermediate_results=50_000)


class TestExceptions:
    def test_hierarchy(self):
        assert issubclass(TimeoutExceeded, BudgetExceeded)
        assert issubclass(MemoryBudgetExceeded, BudgetExceeded)
        assert issubclass(BudgetExceeded, ReproError)

    def test_messages(self):
        assert "timeout" in str(TimeoutExceeded(3.0))
        assert TimeoutExceeded(3.0).limit_seconds == 3.0
        assert "intermediate" in str(MemoryBudgetExceeded(10))
        assert MemoryBudgetExceeded(10).limit_items == 10
        error = BudgetExceeded("reason", "detail")
        assert error.reason == "reason" and error.detail == "detail"


class TestRIGSetKinds:
    @pytest.mark.parametrize("set_kind", ["set", "roaring", "intbitset"])
    def test_mjoin_answer_independent_of_set_kind(self, paper_context, paper_query, paper_answer, set_kind):
        rig = build_rig(paper_context, paper_query, RIGOptions(set_kind=set_kind)).rig
        occurrences, _, _ = mjoin(rig)
        assert frozenset(occurrences) == paper_answer

    @pytest.mark.parametrize("set_kind", ["set", "roaring"])
    def test_gm_end_to_end_with_set_kind(self, paper_graph, paper_context, paper_query, paper_answer, set_kind):
        matcher = GraphMatcher(
            paper_graph, context=paper_context, rig_options=RIGOptions(set_kind=set_kind)
        )
        assert matcher.match(paper_query).occurrence_set() == paper_answer


@st.composite
def graph_query_pair(draw):
    seed = draw(st.integers(min_value=0, max_value=5_000))
    num_nodes = draw(st.integers(min_value=3, max_value=6))
    rng = random.Random(seed)
    graph = random_labeled_graph(30, 90, 3, seed=seed)
    query = random_pattern_query(graph, num_nodes, seed=seed + 1, dense=rng.random() < 0.5)
    return graph, query


class TestOrderingProperties:
    @settings(max_examples=30, deadline=None)
    @given(data=graph_query_pair())
    def test_all_orderings_are_permutations(self, data):
        graph, query = data
        context = MatchContext(graph)
        rig = build_rig(context, query).rig
        for order in (jo_order(query, rig), ri_order(query), bj_order(rig.query, rig)):
            assert sorted(order) == list(rig.query.nodes()) or sorted(order) == list(query.nodes())

    @settings(max_examples=20, deadline=None)
    @given(data=graph_query_pair())
    def test_jo_connected_prefix(self, data):
        graph, query = data
        context = MatchContext(graph)
        rig = build_rig(context, query).rig
        order = jo_order(rig.query, rig)
        placed = set()
        for index, node in enumerate(order):
            if index:
                assert any(neighbor in placed for neighbor in rig.query.neighbors(node))
            placed.add(node)


class TestApproximateSimulation:
    @settings(max_examples=20, deadline=None)
    @given(data=graph_query_pair(), max_passes=st.integers(min_value=1, max_value=3))
    def test_truncated_fb_is_superset_of_exact_fb(self, data, max_passes):
        graph, query = data
        context = MatchContext(graph)
        exact = fbsim(context, query)
        approx = fbsim(context, query, options=SimulationOptions(max_passes=max_passes))
        for node in query.nodes():
            assert exact.candidates[node] <= approx.candidates[node]

    def test_prune_threshold_early_stop(self, paper_context, paper_query):
        result = fbsim(
            paper_context, paper_query, options=SimulationOptions(prune_threshold=10_000)
        )
        # Early stop yields a (possibly) larger relation that still contains FB.
        exact = fbsim(paper_context, paper_query)
        for node in paper_query.nodes():
            assert exact.candidates[node] <= result.candidates[node]


class TestRemainingExperimentDrivers:
    """Smoke-run every driver not already covered, at a very small scale."""

    def test_fig09(self):
        report = fig09_child_queries(datasets=("ep",), scale=0.08, budget=TINY_BUDGET, per_class=1)
        assert {row[2] for row in report.rows} == {"GM", "TM", "JM", "ISO"}

    def test_fig10(self):
        report = fig10_label_scaling(label_counts=(5, 10), templates=("HQ2",), scale=0.08, budget=TINY_BUDGET)
        assert {row[0] for row in report.rows} == {5, 10}

    def test_fig11(self):
        report = fig11_size_scaling(fractions=(0.5, 1.0), templates=("HQ8",), scale=0.08, budget=TINY_BUDGET)
        sizes = sorted({row[0] for row in report.rows})
        assert len(sizes) == 2 and sizes[0] < sizes[1]

    def test_fig15(self):
        report = fig15_transitive_reduction(datasets=("em",), templates=("HQ3",), scale=0.08, budget=TINY_BUDGET)
        assert {row[2] for row in report.rows} == {"GM", "GM-NR", "TM"}

    def test_fig16(self):
        report = fig16_wcoj_engine(
            catalog_datasets=("em", "hu"), query_datasets=("am",), scale=0.08,
            budget=TINY_BUDGET, templates=("CQ17",),
        )
        parts = {row[0] for row in report.rows}
        assert parts == {"a", "b"}

    def test_table5(self):
        report = table5_engines(datasets=("em",), scale=0.08, budget=TINY_BUDGET, per_class=1)
        assert {row[2] for row in report.rows} == {"EH", "Neo4j", "GM"}

    def test_fig17(self):
        report = fig17_rm_human(node_counts=(8,), per_size=1, scale=0.08, budget=TINY_BUDGET)
        assert {row[0] for row in report.rows} == {"dense", "sparse"}

    def test_fig18(self):
        report = fig18_reachability_engines(
            label_counts=(5,), node_counts=(80,), scale=0.08, budget=TINY_BUDGET, templates=("HQ4",)
        )
        index_rows = [row for row in report.rows if row[0] == "a"]
        assert {row[4] for row in index_rows} == {"BFL", "TC", "CAT"}
        query_rows = [row for row in report.rows if row[0] == "b"]
        assert {row[4] for row in query_rows} == {"Neo4j", "GF", "GM"}
