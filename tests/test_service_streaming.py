"""Tests for true pipelined service streaming.

The acceptance bar of the redesign, asserted with synthetic engines whose
production rate and failure modes are controlled:

* the **first page of ``QueryService.stream(...).pages()`` arrives before
  the underlying query completes** (slow producer, fast consumer);
* **backpressure bounds the producer's lead** over a slow consumer to the
  configured page-queue depth (fast producer, stalled consumer);
* an **abandoned page generator releases the snapshot pin and cancels the
  producer** — the pin-leak regression test, asserted through the store
  gauges (``pinned_epochs`` / ``StoreStats``);
* shed, failed and cancelled tickets surface through ``pages()`` exactly
  like they do through ``result()``.
"""

from __future__ import annotations

import gc
import time

import pytest

from fixtures_paper import PAPER_ANSWER, build_paper_graph, build_paper_query
from repro.engines.base import Engine
from repro.exceptions import QueryCancelled, ServiceOverloadedError
from repro.matching.result import Budget
from repro.query.pattern import EdgeType, PatternQuery
from repro.service import QueryService, ServiceConfig
from repro.service.service import TICKET_CANCELLED, TICKET_DONE, TICKET_FAILED
from repro.session import QuerySession

pytestmark = pytest.mark.timeout(120)


def simple_query() -> PatternQuery:
    return PatternQuery(
        labels=["A", "B"],
        edges=[(0, 1, EdgeType.CHILD)],
        name="ab",
    )


class SlowEngine(Engine):
    """Emits one dummy occurrence every ``delay`` seconds, cancel-aware."""

    name = "SLOW-TEST"
    total = 60
    delay = 0.01

    def _iter_evaluate(self, graph, query, budget):
        event = budget.cancel_event
        for index in range(self.total):
            if event is not None and event.is_set():
                raise QueryCancelled()
            time.sleep(self.delay)
            yield tuple(index for _ in query.nodes())


class FirehoseEngine(Engine):
    """Emits occurrences as fast as possible, counting every production."""

    name = "FIREHOSE-TEST"
    total = 10_000
    produced = 0  # class-level: reset per test

    def _iter_evaluate(self, graph, query, budget):
        for index in range(self.total):
            type(self).produced += 1
            yield tuple(index for _ in query.nodes())


class BrokenEngine(Engine):
    """Fails mid-stream with a non-budget error."""

    name = "BROKEN-TEST"

    def _iter_evaluate(self, graph, query, budget):
        yield tuple(0 for _ in query.nodes())
        raise ValueError("boom mid-stream")


@pytest.fixture(autouse=True)
def registered_engines():
    for cls in (SlowEngine, FirehoseEngine, BrokenEngine):
        QuerySession.register_engine(cls.name, cls)
    yield
    for cls in (SlowEngine, FirehoseEngine, BrokenEngine):
        QuerySession.unregister_engine(cls.name)


@pytest.fixture
def service():
    with QueryService(build_paper_graph(), config=ServiceConfig(workers=2)) as svc:
        yield svc


class TestPipelinedFirstPage:
    def test_first_page_arrives_before_query_completes(self, service):
        result = service.stream(simple_query(), engine="SLOW-TEST", page_size=4)
        page_iter = result.pages(timeout=30.0)
        first = next(page_iter)
        assert len(first) == 4
        # 60 matches x 10ms means the query runs ~600ms; the first page was
        # handed over after ~40ms, long before the producer can be done.
        assert not result.ticket.done, (
            "first page only became available after the query finished — "
            "streaming is not pipelined"
        )
        remaining = list(page_iter)
        assert result.ticket.done
        total = len(first) + sum(len(page) for page in remaining)
        assert total == SlowEngine.total
        assert result.report().num_matches == SlowEngine.total

    def test_gm_streaming_equals_eager_service_query(self, service):
        with service.stream(build_paper_query(), page_size=3) as result:
            streamed = {occ for page in result.pages(timeout=30.0) for occ in page}
        assert streamed == set(PAPER_ANSWER)
        eager = service.query(build_paper_query())
        assert streamed == eager.occurrence_set()


class TestBackpressure:
    def test_producer_lead_is_bounded_by_queue_depth(self):
        config = ServiceConfig(workers=1, stream_buffer_pages=2)
        with QueryService(build_paper_graph(), config=config) as service:
            FirehoseEngine.produced = 0
            result = service.stream(
                simple_query(),
                engine="FIREHOSE-TEST",
                page_size=8,
                keep_occurrences=False,
            )
            page_iter = result.pages(timeout=30.0)
            next(page_iter)
            time.sleep(0.25)  # stall: give an unthrottled producer time to run away
            stalled_lead = FirehoseEngine.produced
            # Queue depth 2 pages + the page in flight + the consumed page:
            # a bounded producer sits at a few dozen; an unbounded one would
            # have finished all 10k.
            assert stalled_lead < 200, (
                f"producer ran {stalled_lead} occurrences ahead of a stalled "
                "consumer — backpressure is not bounding the stream buffer"
            )
            assert not result.ticket.done
            drained = sum(len(page) for page in page_iter)
            assert drained + 8 == FirehoseEngine.total
            report = result.report(timeout=30.0)
            assert report.num_matches == FirehoseEngine.total
            # Counting drain: pages flowed, but no occurrence list was kept.
            assert report.occurrences == []


class TestPinLifecycle:
    def test_abandoned_pages_generator_releases_pin_and_cancels(self, service):
        assert service.stats_snapshot()["pinned_epochs"] == 0
        result = service.stream(simple_query(), engine="SLOW-TEST", page_size=2)
        assert service.stats_snapshot()["pinned_epochs"] == 1
        for page in result.pages(timeout=30.0):
            break  # consumer walks away mid-iteration
        # Breaking out of the loop drops the generator; its finally-clause
        # (run on finalisation) must close the result.  Collect explicitly
        # so the test does not depend on prompt refcounting.
        gc.collect()
        assert service.stats_snapshot()["pinned_epochs"] == 0, (
            "abandoned StreamingResult leaked its snapshot pin"
        )
        assert result.ticket.wait(timeout=10.0)
        assert result.ticket.status in (TICKET_CANCELLED, TICKET_DONE)
        report = result.ticket.report
        assert report is not None and report.num_matches < SlowEngine.total, (
            "producer ran to completion despite the consumer abandoning"
        )

    def test_explicit_close_mid_stream_releases_pin_and_cancels(self, service):
        result = service.stream(simple_query(), engine="SLOW-TEST", page_size=2)
        page_iter = result.pages(timeout=30.0)
        next(page_iter)
        page_iter.close()
        assert service.stats_snapshot()["pinned_epochs"] == 0
        assert result.ticket.wait(timeout=10.0)
        assert result.ticket.status == TICKET_CANCELLED

    def test_pages_abandoned_before_first_next_releases_pin(self, service):
        # Regression: pages() used to be a plain generator, whose finally
        # clause never runs if the caller walks away before the first
        # next() — the ticket kept running and the pin leaked forever.
        assert service.stats_snapshot()["pinned_epochs"] == 0
        result = service.stream(simple_query(), engine="SLOW-TEST", page_size=2)
        ticket = result.ticket
        page_iter = result.pages(timeout=30.0)
        assert service.stats_snapshot()["pinned_epochs"] == 1
        del page_iter  # never advanced
        gc.collect()
        assert service.stats_snapshot()["pinned_epochs"] == 0, (
            "pages() abandoned before the first next() leaked its snapshot pin"
        )
        assert ticket.wait(timeout=10.0)
        assert ticket.status in (TICKET_CANCELLED, TICKET_DONE)
        assert ticket.report is not None
        assert ticket.report.num_matches < SlowEngine.total, (
            "producer ran to completion despite the consumer abandoning"
        )

    def test_unconsumed_stream_close_releases_pin(self, service):
        result = service.stream(simple_query(), engine="SLOW-TEST", page_size=2)
        result.close()
        assert service.stats_snapshot()["pinned_epochs"] == 0
        assert result.ticket.wait(timeout=10.0)

    def test_stream_gc_gauges_after_version_churn(self, service):
        # The pinned epoch must survive a publish while streaming, then be
        # GCed once the stream ends (StoreStats.gc_count moves).
        result = service.stream(simple_query(), engine="SLOW-TEST", page_size=4)
        delta = service.store.graph  # head graph for a delta base
        from repro.dynamic import GraphDelta

        edit = GraphDelta.for_graph(delta)
        node = edit.add_node("Z")
        edit.add_edge(0, node)
        service.apply(edit)
        before = service.store.stats.snapshot()["gc_count"]
        list(result.pages(timeout=30.0))
        after = service.store.stats.snapshot()["gc_count"]
        assert result.version == 0
        assert service.store.head_version > 0
        assert after >= before + 1  # the streamed epoch was retired on release


class TestFailurePaths:
    def test_queue_full_shed_raises_and_releases_pin(self):
        config = ServiceConfig(workers=1, queue_limit=0)
        with QueryService(build_paper_graph(), config=config) as service:
            with pytest.raises(ServiceOverloadedError):
                service.stream(simple_query(), page_size=4)
            assert service.stats_snapshot()["pinned_epochs"] == 0

    def test_mid_stream_failure_surfaces_through_pages(self, service):
        result = service.stream(simple_query(), engine="BROKEN-TEST", page_size=1)
        page_iter = result.pages(timeout=30.0)
        assert next(page_iter) == ((0, 0),)
        with pytest.raises(ValueError, match="boom mid-stream"):
            list(page_iter)
        assert result.ticket.status == TICKET_FAILED
        assert service.stats_snapshot()["pinned_epochs"] == 0

    def test_prompt_consumer_close_does_not_fail_a_done_ticket(self, service):
        # Regression: the consumer's pages() finally-block releases the pin
        # the instant the sentinel arrives; the worker's post-finish
        # bookkeeping must not observe the released snapshot and flip a
        # DONE ticket to FAILED.
        for _ in range(10):
            result = service.stream(build_paper_query(), page_size=2)
            pages = list(result.pages(timeout=30.0))
            assert result.ticket.wait(timeout=10.0)
            assert result.ticket.status == TICKET_DONE, result.ticket.error
            assert result.report().num_matches == len(PAPER_ANSWER)
            assert sum(len(page) for page in pages) == len(PAPER_ANSWER)

    def test_deadline_shed_surfaces_through_pages(self):
        config = ServiceConfig(workers=1, stream_buffer_pages=1)
        with QueryService(build_paper_graph(), config=config) as service:
            # Occupy the only worker with an undrained slow stream...
            blocker = service.stream(simple_query(), engine="SLOW-TEST", page_size=1)
            # ...queue a request whose deadline lapses while it waits...
            result = service.stream(
                simple_query(), page_size=4, deadline_seconds=0.05
            )
            time.sleep(0.2)
            blocker.close()  # frees the worker after the deadline passed
            with pytest.raises(ServiceOverloadedError):
                list(result.pages(timeout=30.0))
            assert service.stats_snapshot()["pinned_epochs"] == 0
