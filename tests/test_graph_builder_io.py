"""Tests for GraphBuilder and the edge-list / label-file / JSON persistence."""

import pytest

from repro.dynamic import GraphDelta, MutableDataGraph
from repro.exceptions import GraphError
from repro.graph.builder import GraphBuilder
from repro.graph.digraph import DataGraph
from repro.graph.generators import random_labeled_graph
from repro.graph.io import (
    graph_from_parts,
    load_graph,
    load_graph_delta_json,
    load_graph_json,
    read_edge_list,
    read_labels,
    save_graph,
    save_graph_json,
    write_edge_list,
    write_labels,
)


class TestGraphBuilder:
    def test_add_node_returns_dense_ids(self):
        builder = GraphBuilder()
        assert builder.add_node("x", "A") == 0
        assert builder.add_node("y", "B") == 1

    def test_add_node_idempotent(self):
        builder = GraphBuilder()
        builder.add_node("x", "A")
        assert builder.add_node("x", "A") == 0
        assert builder.num_nodes == 1

    def test_relabel_rejected(self):
        builder = GraphBuilder()
        builder.add_node("x", "A")
        with pytest.raises(GraphError):
            builder.add_node("x", "B")

    def test_add_edge_requires_known_nodes(self):
        builder = GraphBuilder()
        builder.add_node("x", "A")
        with pytest.raises(GraphError):
            builder.add_edge("x", "missing")
        with pytest.raises(GraphError):
            builder.add_edge("missing", "x")

    def test_ensure_node(self):
        builder = GraphBuilder()
        node = builder.ensure_node("x", "A")
        assert builder.ensure_node("x") == node
        with pytest.raises(GraphError):
            builder.ensure_node("new-node")

    def test_add_labeled_edge_creates_endpoints(self):
        builder = GraphBuilder()
        builder.add_labeled_edge("x", "A", "y", "B")
        graph = builder.build()
        assert graph.num_nodes == 2
        assert graph.has_edge(0, 1)

    def test_add_edges_bulk(self):
        builder = GraphBuilder()
        for key in "abc":
            builder.add_node(key, "L")
        builder.add_edges([("a", "b"), ("b", "c")])
        assert builder.num_edges == 2

    def test_contains_and_node_id(self):
        builder = GraphBuilder()
        builder.add_node("x", "A")
        assert "x" in builder
        assert "y" not in builder
        assert builder.node_id("x") == 0
        with pytest.raises(GraphError):
            builder.node_id("y")

    def test_build_and_id_mapping(self):
        builder = GraphBuilder()
        builder.add_node("alice", "Person")
        builder.add_node("post", "Post")
        builder.add_edge("alice", "post")
        graph = builder.build(name="social")
        assert graph.name == "social"
        assert graph.label(0) == "Person"
        assert builder.id_mapping() == {"alice": 0, "post": 1}


class TestIO:
    @pytest.fixture()
    def graph(self):
        return DataGraph(["A", "B", "C"], [(0, 1), (1, 2)], name="io-test")

    def test_edge_list_roundtrip(self, graph, tmp_path):
        path = str(tmp_path / "graph.edges")
        write_edge_list(graph, path)
        assert read_edge_list(path) == [(0, 1), (1, 2)]

    def test_labels_roundtrip(self, graph, tmp_path):
        path = str(tmp_path / "graph.labels")
        write_labels(graph, path)
        assert read_labels(path) == {0: "A", 1: "B", 2: "C"}

    def test_save_and_load_graph(self, graph, tmp_path):
        stem = str(tmp_path / "graph")
        save_graph(graph, stem)
        loaded = load_graph(stem)
        assert loaded == graph

    def test_load_missing_files(self, tmp_path):
        with pytest.raises(GraphError):
            load_graph(str(tmp_path / "absent"))

    def test_edge_list_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("# comment\n\n0\t1\n1 2\n")
        assert read_edge_list(str(path)) == [(0, 1), (1, 2)]

    def test_edge_list_malformed(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("justonecolumn\n")
        with pytest.raises(GraphError):
            read_edge_list(str(path))

    def test_labels_malformed(self, tmp_path):
        path = tmp_path / "labels.txt"
        path.write_text("5\n")
        with pytest.raises(GraphError):
            read_labels(str(path))

    def test_graph_from_parts(self):
        graph = graph_from_parts({0: "A", 1: "B"}, [(0, 1)], name="parts")
        assert graph.num_nodes == 2
        assert graph.has_edge(0, 1)

    def test_graph_from_parts_missing_label(self):
        with pytest.raises(GraphError):
            graph_from_parts({0: "A", 2: "C"}, [(0, 2)])

    def test_graph_from_parts_edge_to_unlabelled(self):
        with pytest.raises(GraphError):
            graph_from_parts({0: "A"}, [(0, 3)])

    def test_graph_from_parts_empty(self):
        graph = graph_from_parts({}, [])
        assert graph.num_nodes == 0


class TestJsonRoundTrip:
    """Regression: load(save(g)) preserves labels, edges and I_label order."""

    def test_round_trip_preserves_everything(self, tmp_path):
        graph = random_labeled_graph(25, 60, num_labels=4, seed=7, name="rt")
        path = str(tmp_path / "graph.json")
        save_graph_json(graph, path)
        loaded = load_graph_json(path)
        assert loaded == graph
        assert loaded.name == graph.name
        assert loaded.labels == graph.labels
        assert sorted(loaded.edges()) == sorted(graph.edges())
        for label in graph.label_alphabet():
            assert loaded.inverted_list(label) == graph.inverted_list(label)
        assert loaded.label_alphabet() == graph.label_alphabet()

    def test_round_trip_preserves_version(self, tmp_path):
        base = random_labeled_graph(10, 20, num_labels=3, seed=2)
        overlay = MutableDataGraph(base)
        overlay.add_node("Z")
        patched = overlay.materialize()
        assert patched.version == 1
        path = str(tmp_path / "versioned.json")
        save_graph_json(patched, path)
        assert load_graph_json(path).version == 1

    def test_round_trip_with_pending_delta(self, tmp_path):
        graph = random_labeled_graph(8, 12, num_labels=3, seed=5)
        delta = GraphDelta.for_graph(graph)
        node = delta.add_node("D")
        delta.add_edge(0, node)
        delta.relabel(1, "D")
        path = str(tmp_path / "with_delta.json")
        save_graph_json(graph, path, delta=delta)
        loaded, restored = load_graph_delta_json(path)
        assert loaded == graph
        assert restored is not None
        assert restored.ops == delta.ops
        # the restored delta is applicable and reproduces the same state
        direct = MutableDataGraph(graph, delta).materialize()
        via_json = MutableDataGraph(loaded, restored).materialize()
        assert via_json == direct
        assert via_json.labels == direct.labels

    def test_round_trip_without_delta(self, tmp_path):
        graph = random_labeled_graph(6, 8, num_labels=2, seed=4)
        path = str(tmp_path / "plain.json")
        save_graph_json(graph, path)
        loaded, restored = load_graph_delta_json(path)
        assert loaded == graph
        assert restored is None

    def test_overlay_saves_current_state(self, tmp_path):
        graph = random_labeled_graph(6, 8, num_labels=2, seed=9)
        overlay = MutableDataGraph(graph)
        node = overlay.add_node("Q")
        overlay.add_edge(0, node)
        path = str(tmp_path / "overlay.json")
        save_graph_json(overlay, path)
        loaded = load_graph_json(path)
        assert loaded == overlay.materialize()
        assert loaded.version == overlay.version

    def test_atomic_save_survives_mid_write_failure(self, tmp_path, monkeypatch):
        # regression: a crash halfway through a save used to leave a
        # truncated document at the destination; the temp-file + replace
        # discipline must preserve the previous complete file instead.
        graph = random_labeled_graph(12, 24, num_labels=3, seed=11, name="keep")
        path = str(tmp_path / "graph.json")
        save_graph_json(graph, path)

        def torn_dump(payload, handle, **kwargs):
            handle.write('{"format": "repro-graph", "trunc')
            raise OSError("disk full mid-write")

        monkeypatch.setattr("repro.graph.io.json.dump", torn_dump)
        newer = random_labeled_graph(5, 6, num_labels=2, seed=12, name="lost")
        with pytest.raises(OSError):
            save_graph_json(newer, path)
        monkeypatch.undo()

        assert load_graph_json(path) == graph  # old document intact
        assert list(tmp_path.glob("*.tmp")) == []  # temp file cleaned up

    def test_atomic_save_failure_on_fresh_path_leaves_nothing(
        self, tmp_path, monkeypatch
    ):
        def boom(payload, handle, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr("repro.graph.io.json.dump", boom)
        path = tmp_path / "fresh.json"
        with pytest.raises(OSError):
            save_graph_json(
                random_labeled_graph(4, 4, num_labels=2, seed=1), str(path)
            )
        monkeypatch.undo()
        assert not path.exists()
        assert list(tmp_path.glob("*.tmp")) == []

    def test_stale_delta_skipped_on_load(self, tmp_path):
        # regression: a delta already folded into the saved graph came
        # back from load_graph_delta_json and invited a double-apply.
        base = random_labeled_graph(8, 12, num_labels=3, seed=6, name="vc")
        delta = GraphDelta.for_graph(base)
        node = delta.add_node("Z")
        delta.add_edge(0, node)
        assert delta.base_version == base.version == 0
        folded = MutableDataGraph(base, delta).materialize(name=base.name)
        assert folded.version == 1

        # save the folded graph alongside the (now stale) delta
        stale_path = str(tmp_path / "stale.json")
        save_graph_json(folded, stale_path, delta=delta)
        loaded, restored = load_graph_delta_json(stale_path)
        assert loaded == folded
        assert restored is None  # stale: base_version 0 < graph version 1

        # the same delta saved against its own base version round-trips
        # and applies to the same state
        fresh_path = str(tmp_path / "fresh.json")
        save_graph_json(base, fresh_path, delta=delta)
        loaded, restored = load_graph_delta_json(fresh_path)
        assert restored is not None and restored.base_version == 0
        assert MutableDataGraph(loaded, restored).materialize() == folded

    def test_delta_without_base_version_still_returned(self, tmp_path):
        # hand-built deltas (no recorded base version) predate the
        # version check and must keep round-tripping unchanged
        graph = random_labeled_graph(6, 8, num_labels=2, seed=3)
        delta = GraphDelta(graph.num_nodes)
        delta.add_node("Q")
        assert delta.base_version is None
        path = str(tmp_path / "legacy.json")
        save_graph_json(graph, path, delta=delta)
        _, restored = load_graph_delta_json(path)
        assert restored is not None and restored.ops == delta.ops

    def test_rejects_non_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json at all")
        with pytest.raises(GraphError):
            load_graph_json(str(path))

    def test_rejects_foreign_document(self, tmp_path):
        path = tmp_path / "foreign.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(GraphError):
            load_graph_json(str(path))
