"""Tests for GraphBuilder and the edge-list / label-file persistence."""

import pytest

from repro.exceptions import GraphError
from repro.graph.builder import GraphBuilder
from repro.graph.digraph import DataGraph
from repro.graph.io import (
    graph_from_parts,
    load_graph,
    read_edge_list,
    read_labels,
    save_graph,
    write_edge_list,
    write_labels,
)


class TestGraphBuilder:
    def test_add_node_returns_dense_ids(self):
        builder = GraphBuilder()
        assert builder.add_node("x", "A") == 0
        assert builder.add_node("y", "B") == 1

    def test_add_node_idempotent(self):
        builder = GraphBuilder()
        builder.add_node("x", "A")
        assert builder.add_node("x", "A") == 0
        assert builder.num_nodes == 1

    def test_relabel_rejected(self):
        builder = GraphBuilder()
        builder.add_node("x", "A")
        with pytest.raises(GraphError):
            builder.add_node("x", "B")

    def test_add_edge_requires_known_nodes(self):
        builder = GraphBuilder()
        builder.add_node("x", "A")
        with pytest.raises(GraphError):
            builder.add_edge("x", "missing")
        with pytest.raises(GraphError):
            builder.add_edge("missing", "x")

    def test_ensure_node(self):
        builder = GraphBuilder()
        node = builder.ensure_node("x", "A")
        assert builder.ensure_node("x") == node
        with pytest.raises(GraphError):
            builder.ensure_node("new-node")

    def test_add_labeled_edge_creates_endpoints(self):
        builder = GraphBuilder()
        builder.add_labeled_edge("x", "A", "y", "B")
        graph = builder.build()
        assert graph.num_nodes == 2
        assert graph.has_edge(0, 1)

    def test_add_edges_bulk(self):
        builder = GraphBuilder()
        for key in "abc":
            builder.add_node(key, "L")
        builder.add_edges([("a", "b"), ("b", "c")])
        assert builder.num_edges == 2

    def test_contains_and_node_id(self):
        builder = GraphBuilder()
        builder.add_node("x", "A")
        assert "x" in builder
        assert "y" not in builder
        assert builder.node_id("x") == 0
        with pytest.raises(GraphError):
            builder.node_id("y")

    def test_build_and_id_mapping(self):
        builder = GraphBuilder()
        builder.add_node("alice", "Person")
        builder.add_node("post", "Post")
        builder.add_edge("alice", "post")
        graph = builder.build(name="social")
        assert graph.name == "social"
        assert graph.label(0) == "Person"
        assert builder.id_mapping() == {"alice": 0, "post": 1}


class TestIO:
    @pytest.fixture()
    def graph(self):
        return DataGraph(["A", "B", "C"], [(0, 1), (1, 2)], name="io-test")

    def test_edge_list_roundtrip(self, graph, tmp_path):
        path = str(tmp_path / "graph.edges")
        write_edge_list(graph, path)
        assert read_edge_list(path) == [(0, 1), (1, 2)]

    def test_labels_roundtrip(self, graph, tmp_path):
        path = str(tmp_path / "graph.labels")
        write_labels(graph, path)
        assert read_labels(path) == {0: "A", 1: "B", 2: "C"}

    def test_save_and_load_graph(self, graph, tmp_path):
        stem = str(tmp_path / "graph")
        save_graph(graph, stem)
        loaded = load_graph(stem)
        assert loaded == graph

    def test_load_missing_files(self, tmp_path):
        with pytest.raises(GraphError):
            load_graph(str(tmp_path / "absent"))

    def test_edge_list_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("# comment\n\n0\t1\n1 2\n")
        assert read_edge_list(str(path)) == [(0, 1), (1, 2)]

    def test_edge_list_malformed(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("justonecolumn\n")
        with pytest.raises(GraphError):
            read_edge_list(str(path))

    def test_labels_malformed(self, tmp_path):
        path = tmp_path / "labels.txt"
        path.write_text("5\n")
        with pytest.raises(GraphError):
            read_labels(str(path))

    def test_graph_from_parts(self):
        graph = graph_from_parts({0: "A", 1: "B"}, [(0, 1)], name="parts")
        assert graph.num_nodes == 2
        assert graph.has_edge(0, 1)

    def test_graph_from_parts_missing_label(self):
        with pytest.raises(GraphError):
            graph_from_parts({0: "A", 2: "C"}, [(0, 2)])

    def test_graph_from_parts_edge_to_unlabelled(self):
        with pytest.raises(GraphError):
            graph_from_parts({0: "A"}, [(0, 3)])

    def test_graph_from_parts_empty(self):
        graph = graph_from_parts({}, [])
        assert graph.num_nodes == 0
