"""Unit tests for the reachability indexes."""

import pytest

from repro.exceptions import ReachabilityError
from repro.graph.digraph import DataGraph
from repro.reachability.base import BFSReachability
from repro.reachability.bfl import BloomFilterLabeling
from repro.reachability.factory import REACHABILITY_KINDS, build_reachability_index
from repro.reachability.interval import IntervalIndex
from repro.reachability.transitive_closure import TransitiveClosureIndex

ALL_INDEX_CLASSES = [BFSReachability, TransitiveClosureIndex, IntervalIndex, BloomFilterLabeling]


@pytest.fixture()
def diamond_with_cycle():
    # 0 -> 1 -> 3, 0 -> 2 -> 3, 3 -> 4, and a cycle 4 -> 5 -> 4; 6 isolated.
    edges = [(0, 1), (1, 3), (0, 2), (2, 3), (3, 4), (4, 5), (5, 4)]
    return DataGraph(["X"] * 7, edges, name="diamond")


@pytest.mark.parametrize("index_class", ALL_INDEX_CLASSES)
class TestAllIndexes:
    def test_reflexive(self, diamond_with_cycle, index_class):
        index = index_class(diamond_with_cycle)
        assert index.reaches(3, 3)

    def test_direct_edge(self, diamond_with_cycle, index_class):
        index = index_class(diamond_with_cycle)
        assert index.reaches(0, 1)

    def test_path(self, diamond_with_cycle, index_class):
        index = index_class(diamond_with_cycle)
        assert index.reaches(0, 4)
        assert index.reaches(1, 5)

    def test_not_reachable(self, diamond_with_cycle, index_class):
        index = index_class(diamond_with_cycle)
        assert not index.reaches(4, 0)
        assert not index.reaches(6, 0)
        assert not index.reaches(0, 6)

    def test_cycle_members_reach_each_other(self, diamond_with_cycle, index_class):
        index = index_class(diamond_with_cycle)
        assert index.reaches(4, 5)
        assert index.reaches(5, 4)

    def test_reaches_strict(self, diamond_with_cycle, index_class):
        index = index_class(diamond_with_cycle)
        # 4 is on a cycle, 0 is not.
        assert index.reaches_strict(4, 4)
        assert not index.reaches_strict(0, 0)
        assert index.reaches_strict(0, 3)

    def test_agrees_with_bfs_everywhere(self, diamond_with_cycle, index_class):
        index = index_class(diamond_with_cycle)
        graph = diamond_with_cycle
        for u in graph.nodes():
            for v in graph.nodes():
                assert index.reaches(u, v) == graph.reaches_bfs(u, v), (u, v)

    def test_build_time_recorded(self, diamond_with_cycle, index_class):
        index = index_class(diamond_with_cycle)
        assert index.build_seconds >= 0.0

    def test_descendants_and_ancestors(self, diamond_with_cycle, index_class):
        index = index_class(diamond_with_cycle)
        assert set(index.descendants(0)) == {0, 1, 2, 3, 4, 5}
        assert set(index.ancestors(4)) == {0, 1, 2, 3, 4, 5}


class TestTransitiveClosureSpecifics:
    def test_reachable_set(self, diamond_with_cycle):
        index = TransitiveClosureIndex(diamond_with_cycle)
        assert set(index.reachable_set(3)) == {3, 4, 5}

    def test_closure_edges_exclude_self(self, diamond_with_cycle):
        index = TransitiveClosureIndex(diamond_with_cycle)
        edges = index.closure_edges()
        assert (0, 4) in edges
        assert all(u != v for u, v in edges)
        assert index.num_closure_edges() == len(edges)


class TestIntervalSpecifics:
    def test_negative_cut_is_sound(self, diamond_with_cycle):
        index = IntervalIndex(diamond_with_cycle)
        for u in diamond_with_cycle.nodes():
            for v in diamond_with_cycle.nodes():
                if index.definitely_not_reaches(u, v):
                    assert not diamond_with_cycle.reaches_bfs(u, v)

    def test_interval_well_formed(self, diamond_with_cycle):
        index = IntervalIndex(diamond_with_cycle)
        for node in diamond_with_cycle.nodes():
            begin, end = index.interval(node)
            assert begin < end

    def test_condensation_exposed(self, diamond_with_cycle):
        result = IntervalIndex(diamond_with_cycle).condensation_result()
        assert result.component_of[4] == result.component_of[5]


class TestBFLSpecifics:
    def test_label_size(self, diamond_with_cycle):
        index = BloomFilterLabeling(diamond_with_cycle, num_bits=32)
        assert index.label_size_bits() == 2 * 32 * 6  # 6 SCC components

    def test_fallback_counter_monotone(self, diamond_with_cycle):
        index = BloomFilterLabeling(diamond_with_cycle)
        before = index.dfs_fallback_count
        for u in diamond_with_cycle.nodes():
            for v in diamond_with_cycle.nodes():
                index.reaches(u, v)
        assert index.dfs_fallback_count >= before

    def test_custom_parameters(self, diamond_with_cycle):
        index = BloomFilterLabeling(diamond_with_cycle, num_bits=16, num_hashes=3, seed=99)
        for u in diamond_with_cycle.nodes():
            for v in diamond_with_cycle.nodes():
                assert index.reaches(u, v) == diamond_with_cycle.reaches_bfs(u, v)


class TestFactory:
    def test_all_kinds_registered(self):
        assert set(REACHABILITY_KINDS) == {"bfl", "interval", "tc", "bfs"}

    def test_build_by_name(self, diamond_with_cycle):
        for kind, expected in (("bfl", BloomFilterLabeling), ("tc", TransitiveClosureIndex),
                               ("interval", IntervalIndex), ("bfs", BFSReachability)):
            index = build_reachability_index(diamond_with_cycle, kind=kind)
            assert isinstance(index, expected)

    def test_kwargs_forwarded(self, diamond_with_cycle):
        index = build_reachability_index(diamond_with_cycle, kind="bfl", num_bits=16)
        assert isinstance(index, BloomFilterLabeling)

    def test_unknown_kind(self, diamond_with_cycle):
        with pytest.raises(ReachabilityError):
            build_reachability_index(diamond_with_cycle, kind="nope")

    def test_index_name(self, diamond_with_cycle):
        assert build_reachability_index(diamond_with_cycle, kind="bfl").index_name() == "BloomFilterLabeling"
