"""Tests for the MVCC versioned graph store: chain, pinning, GC, forks."""

import pytest

from fixtures_paper import A1, B0, C0, PAPER_ANSWER
from repro.dynamic import GraphDelta
from repro.exceptions import StoreError
from repro.session import QuerySession
from repro.store import VersionedGraphStore


@pytest.fixture()
def store(paper_graph) -> VersionedGraphStore:
    store = VersionedGraphStore(paper_graph)
    yield store
    store.close()


def _new_a_delta(graph):
    """A new A-node pointing at b0 and c0: adds exactly one GM match."""
    delta = GraphDelta.for_graph(graph)
    node = delta.add_node("A")
    delta.add_edge(node, B0)
    delta.add_edge(node, C0)
    return delta, node


class TestVersionChain:
    def test_initial_head(self, store, paper_graph):
        assert store.head_version == 0
        assert store.num_versions_retained == 1
        assert store.retained_versions() == (0,)
        assert store.graph is paper_graph

    def test_apply_publishes_new_head(self, store, paper_query):
        delta, node = _new_a_delta(store.graph)
        report = store.apply(delta)
        assert report.old_version == 0 and report.new_version == 1
        assert store.head_version == 1
        with store.pin() as snap:
            answers = snap.query(paper_query).occurrence_set()
        assert (node, B0, C0) in answers and PAPER_ANSWER < answers

    def test_noop_delta_publishes_nothing(self, store):
        delta = GraphDelta.for_graph(store.graph)
        delta.add_edge(A1, B0)  # already present
        report = store.apply(delta)
        assert report.num_ops == 0
        assert store.head_version == 0
        assert store.stats.noop_applies == 1 and store.stats.applies == 0

    def test_successive_applies_advance_versions(self, store):
        for expected in (1, 2, 3):
            delta, _node = _new_a_delta(store.graph)
            store.apply(delta)
            assert store.head_version == expected
        # nothing pinned: only the head is retained
        assert store.num_versions_retained == 1

    def test_closed_store_refuses(self, paper_graph):
        store = VersionedGraphStore(paper_graph)
        store.close()
        with pytest.raises(StoreError):
            store.pin()
        with pytest.raises(StoreError):
            store.apply(GraphDelta.for_graph(paper_graph).remove_edge(A1, B0))


class TestPinningAndGC:
    def test_pinned_version_survives_applies(self, store, paper_query):
        snap = store.pin()
        baseline = snap.query(paper_query).occurrence_set()
        assert baseline == PAPER_ANSWER
        for _round in range(3):
            delta, _node = _new_a_delta(store.graph)
            store.apply(delta)
        # the pinned epoch still answers version 0 exactly
        assert snap.version == 0
        assert snap.query(paper_query).occurrence_set() == PAPER_ANSWER
        assert store.num_versions_retained == 2  # v0 (pinned) + head v3
        snap.release()
        assert store.num_versions_retained == 1
        assert store.stats.gc_count >= 1

    def test_release_is_idempotent_and_final(self, store, paper_query):
        snap = store.pin()
        snap.release()
        snap.release()
        with pytest.raises(StoreError):
            snap.query(paper_query)
        with pytest.raises(StoreError):
            snap.version

    def test_context_manager_releases(self, store):
        with store.pin() as snap:
            assert store.pinned_epoch_count == 1
            assert snap.version == 0
        assert store.pinned_epoch_count == 0

    def test_pin_specific_retained_version(self, store):
        snap0 = store.pin()
        delta, _node = _new_a_delta(store.graph)
        store.apply(delta)
        other = store.pin(0)
        assert other.version == 0
        snap0.release()
        other.release()
        with pytest.raises(StoreError, match="not retained"):
            store.pin(0)

    def test_multiple_pins_refcount(self, store):
        first, second = store.pin(), store.pin()
        delta, _node = _new_a_delta(store.graph)
        store.apply(delta)
        first.release()
        assert store.num_versions_retained == 2  # second still pins v0
        second.release()
        assert store.num_versions_retained == 1


class TestCopyOnWrite:
    def test_fold_does_not_disturb_pinned_artifacts(self, store, paper_query):
        # warm the head's expensive artifacts, then pin it
        with store.pin() as warmup:
            warmup.session.transitive_closure
            warmup.session.label_bitmaps
            warmup.session.partitions
            warmup.query(paper_query)
        snap = store.pin()
        reachability_before = snap.session.reachability
        delta, _node = _new_a_delta(store.graph)
        report = store.apply(delta)
        # the fold patched artifacts — but on the fork, not the pinned epoch
        assert "reachability" in report.patched
        assert snap.session.reachability is reachability_before
        assert snap.query(paper_query).occurrence_set() == PAPER_ANSWER
        snap.release()

    def test_removal_fold_keeps_old_epoch_exact(self, store, paper_query):
        with store.pin() as warmup:
            warmup.session.transitive_closure
            warmup.query(paper_query)
        snap = store.pin()
        delta = GraphDelta.for_graph(store.graph).remove_edge(A1, B0)
        report = store.apply(delta)
        assert "reachability" in report.invalidated
        assert snap.query(paper_query).occurrence_set() == PAPER_ANSWER
        with store.pin() as head:
            new_answers = head.query(paper_query).occurrence_set()
        assert all(occurrence[:2] != (A1, B0) for occurrence in new_answers)
        snap.release()

    def test_frozen_epoch_refuses_inplace_apply(self, store):
        delta, _node = _new_a_delta(store.graph)
        with store.pin() as snap:
            assert snap.session.frozen
            with pytest.raises(StoreError, match="frozen"):
                snap.session.apply(delta)

    def test_store_adopts_existing_session(self, paper_graph, paper_query):
        session = QuerySession(paper_graph)
        session.query(paper_query)
        misses_before = session.stats.misses("reachability")
        store = VersionedGraphStore(session)
        try:
            with store.pin() as snap:
                assert snap.session is session
                snap.query(paper_query)
            # adopted artifacts were reused, not rebuilt
            assert session.stats.misses("reachability") == misses_before
            with pytest.raises(StoreError):
                session.apply(GraphDelta.for_graph(paper_graph))
        finally:
            store.close()


class TestWarmOnPublish:
    def test_invalidated_artifacts_are_rebuilt_before_publish(self, paper_graph, paper_query):
        store = VersionedGraphStore(paper_graph, warm_on_publish=True)
        try:
            with store.pin() as snap:
                snap.session.transitive_closure
                snap.query(paper_query)
            delta = GraphDelta.for_graph(store.graph).remove_edge(A1, B0)
            report = store.apply(delta)
            assert "reachability" in report.invalidated
            with store.pin() as head:
                # the new head was warmed by the writer: the first read
                # records a hit, not a rebuild miss
                head.query(paper_query)
                assert head.session.stats.misses("reachability") == 1  # warm build
                assert head.session.stats.hits("reachability") >= 1
        finally:
            store.close()


class TestWriterQueue:
    def test_async_applies_fold_in_order(self, store, paper_query):
        # node-free deltas stay valid against any head; enqueue a burst
        futures = []
        for offset in range(3):
            delta = GraphDelta.for_graph(store.graph)
            delta.add_edge(A1, 4 + offset)  # a1 -> b1 / b2 / b3: all new edges
            futures.append(store.apply_async(delta))
        reports = [future.result(timeout=30.0) for future in futures]
        versions = [report.new_version for report in reports]
        assert versions == sorted(versions) and len(set(versions)) == 3
        store.drain()
        assert store.head_version == versions[-1]

    def test_async_node_additions_fold_sequentially(self, store, paper_query):
        # a delta that adds nodes must be built against the head it folds
        # into (the overlay validates the base); fold one at a time
        for _round in range(3):
            delta, _node = _new_a_delta(store.graph)
            store.apply_async(delta).result(timeout=30.0)
        assert store.head_version == 3

    def test_async_writer_coexists_with_sync_apply(self, store):
        future = store.apply_async(
            GraphDelta.for_graph(store.graph).remove_edge(A1, B0)
        )
        future.result(timeout=30.0)
        delta, _node = _new_a_delta(store.graph)
        report = store.apply(delta)
        assert report.new_version == store.head_version

    def test_close_folds_already_queued_deltas(self, paper_graph):
        # Regression: close() promises every delta admitted before the
        # shutdown sentinel still folds; the writer must not reject them
        # with "store is closed" once _closed flips.
        store = VersionedGraphStore(paper_graph)
        futures = []
        for offset in range(3):
            delta = GraphDelta.for_graph(store.graph)
            delta.add_edge(A1, 4 + offset)
            futures.append(store.apply_async(delta))
        store.close()
        reports = [future.result(timeout=30.0) for future in futures]
        assert [report.new_version for report in reports] == [1, 2, 3]
        with pytest.raises(StoreError):
            store.apply(GraphDelta.for_graph(store.graph).add_edge(A1, 5))
