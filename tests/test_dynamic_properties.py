"""Property tests: cross-engine agreement under mutation.

The satellite invariant of the dynamic subsystem: after a random
insert-only delta, every matcher served through the *patched* session
returns bit-identical matches to a *cold* session constructed on the
materialised post-delta graph.  Covers both the incremental-patch path
(reachability/closure updated in place) and the invalidation path (the
cold session builds everything from scratch either way).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dynamic import GraphDelta, MutableDataGraph
from repro.graph.generators import random_labeled_graph
from repro.query.generators import random_pattern_query
from repro.session import QuerySession

#: Matchers exercised by the cross-engine property: the RIG pipeline, one
#: ablation, the join engines and a navigational baseline.
ENGINES = ("GM", "GM-F", "Neo4j", "GF", "JM")


@st.composite
def mutation_case(draw):
    """Random graph + insert-only delta + a small hybrid query."""
    num_nodes = draw(st.integers(min_value=4, max_value=12))
    num_edges = draw(st.integers(min_value=3, max_value=20))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    graph = random_labeled_graph(
        num_nodes,
        min(num_edges, num_nodes * (num_nodes - 1)),
        num_labels=3,
        seed=seed,
        name=f"mut-{seed}",
    )
    delta = GraphDelta.for_graph(graph)
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        delta.add_node(draw(st.sampled_from(["A", "B", "C"])))
    total = graph.num_nodes + delta.num_added_nodes
    for _ in range(draw(st.integers(min_value=1, max_value=6))):
        delta.add_edge(
            draw(st.integers(min_value=0, max_value=total - 1)),
            draw(st.integers(min_value=0, max_value=total - 1)),
        )
    query = random_pattern_query(
        graph,
        num_nodes=draw(st.integers(min_value=2, max_value=3)),
        seed=draw(st.integers(min_value=0, max_value=10_000)),
        descendant_probability=draw(st.sampled_from([0.0, 0.5, 1.0])),
    )
    return graph, delta, query


@given(mutation_case())
@settings(max_examples=25, deadline=None)
def test_patched_session_equals_cold_session(case):
    graph, delta, query = case
    warm = QuerySession(graph)
    warm.query(query)  # build artifacts at version 0 so apply has work to do
    warm.transitive_closure
    effective = MutableDataGraph(
        graph, GraphDelta.from_dict(delta.to_dict())
    ).delta_since_base()
    report = warm.apply(delta)
    if effective:
        assert report.new_version == report.old_version + 1
    else:
        # all ops were no-ops (e.g. duplicate edges): nothing may change
        assert report.new_version == report.old_version
        assert report.patched == [] and report.invalidated == []

    cold_graph = MutableDataGraph(
        graph, GraphDelta.from_dict(delta.to_dict())
    ).materialize()
    cold = QuerySession(cold_graph)

    for engine in ENGINES:
        patched_answer = warm.query(query, engine=engine).occurrence_set()
        cold_answer = cold.query(query, engine=engine).occurrence_set()
        assert patched_answer == cold_answer, (
            f"{engine} diverged after apply(): "
            f"only-patched={sorted(patched_answer - cold_answer)[:5]} "
            f"only-cold={sorted(cold_answer - patched_answer)[:5]}"
        )


@given(mutation_case())
@settings(max_examples=10, deadline=None)
def test_patched_overlay_session_equals_cold_session(case):
    """Same invariant with materialize=False: queries run on the overlay."""
    graph, delta, query = case
    warm = QuerySession(graph)
    warm.query(query)
    warm.apply(delta, materialize=False)

    cold_graph = MutableDataGraph(
        graph, GraphDelta.from_dict(delta.to_dict())
    ).materialize()
    cold = QuerySession(cold_graph)

    for engine in ("GM", "JM"):
        assert (
            warm.query(query, engine=engine).occurrence_set()
            == cold.query(query, engine=engine).occurrence_set()
        ), engine
