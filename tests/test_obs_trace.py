"""End-to-end telemetry over the wire: traces, metrics, and the slow log.

A real :class:`GraphServer` on a loopback socket, exercised through
:class:`GraphClient`:

* trace-ID propagation — a ``trace_id`` on a remote query forces tracing
  server-side and the full span tree returns in ``extra["trace"]``; on
  failure the same id rides the error payload back;
* the streaming span tree accounts for the whole root wall-clock (the
  acceptance bar: stage sum within 10% of the root);
* ``server_metrics`` exposes every per-tenant family — session cache,
  store, service, server, engine, and (for durable tenants) WAL — in both
  JSON and Prometheus form;
* rejection-time load context (queue depth, worker occupancy) crosses the
  wire on :class:`ServiceOverloadedError`;
* the ``slow_queries`` op returns structured entries with span trees.
"""

from __future__ import annotations

import pytest

from fixtures_paper import build_paper_graph, build_paper_query
from repro.api import GraphDB
from repro.client import GraphClient
from repro.exceptions import ServiceOverloadedError, StoreError
from repro.obs import Telemetry, new_trace_id
from repro.server import GraphCatalog, GraphServer
from repro.server.protocol import decode_error, encode_error

pytestmark = pytest.mark.timeout(120)

PAPER_DSL = (
    "node a A\nnode b B\nnode c C\n"
    "edge a -> b\nedge a -> c\nedge b => c"
)


@pytest.fixture
def server():
    with GraphServer() as srv:
        yield srv


@pytest.fixture
def client(server):
    graph = build_paper_graph()
    with GraphClient(*server.address, timeout=60.0) as cli:
        cli.create_graph(
            "paper", labels=graph.labels, edges=graph.edges(), switch=True
        )
        yield cli


# ---------------------------------------------------------------------- #
# trace propagation
# ---------------------------------------------------------------------- #


class TestTracePropagation:
    def test_unary_query_trace_round_trip(self, client):
        trace_id = new_trace_id()
        report = client.query(build_paper_query(), trace_id=trace_id)
        trace = report.extra.get("trace")
        assert trace is not None
        assert trace["trace_id"] == trace_id
        assert trace["name"] == "query"
        span_names = [span["name"] for span in trace["spans"]]
        # The service synthesises the stage breakdown; the server appends
        # its wire-encoding time.
        for required in ["queue_wait", "pin", "plan", "stream_drain", "wire_encode"]:
            assert required in span_names, required
        assert trace["meta"]["status"] == "ok"
        assert trace["meta"]["num_matches"] == report.num_matches
        assert trace["seconds"] >= 0.0
        assert all(span["seconds"] >= 0.0 for span in trace["spans"])

    def test_untraced_query_carries_no_trace(self, client):
        report = client.query(build_paper_query())
        assert "trace" not in report.extra

    def test_streaming_trace_spans_account_for_root(self, client):
        trace_id = new_trace_id()
        stream = client.stream(
            build_paper_query(), page_size=1, trace_id=trace_id
        )
        occurrences = list(stream)
        report = stream.report()
        assert occurrences  # paper query matches
        trace = report.extra.get("trace")
        assert trace is not None
        assert trace["trace_id"] == trace_id
        span_names = [span["name"] for span in trace["spans"]]
        assert "wire_encode" in span_names
        # Acceptance bar: the stage spans of a traced remote streaming
        # query sum to within 10% of the root wall-clock.
        span_sum = sum(span["seconds"] for span in trace["spans"])
        root = trace["seconds"]
        assert root > 0.0
        assert abs(span_sum - root) <= 0.10 * root

    def test_distinct_queries_get_distinct_traces(self, client):
        first = client.query(build_paper_query(), trace_id="trace-aa")
        second = client.query(build_paper_query(), trace_id="trace-bb")
        assert first.extra["trace"]["trace_id"] == "trace-aa"
        assert second.extra["trace"]["trace_id"] == "trace-bb"

    def test_error_path_returns_trace_id(self, client):
        trace_id = new_trace_id()
        with pytest.raises(ServiceOverloadedError) as excinfo:
            client.query(
                build_paper_query(), deadline_seconds=0.0, trace_id=trace_id
            )
        assert excinfo.value.trace_id == trace_id

    def test_parse_error_returns_trace_id(self, client):
        from repro.exceptions import QueryParseError

        with pytest.raises(QueryParseError) as excinfo:
            client.query("node a", trace_id="trace-parse")
        assert getattr(excinfo.value, "trace_id", None) == "trace-parse"


# ---------------------------------------------------------------------- #
# overload context over the wire
# ---------------------------------------------------------------------- #


class TestOverloadContext:
    def test_deadline_shed_ships_load_context(self, client):
        with pytest.raises(ServiceOverloadedError) as excinfo:
            client.query(build_paper_query(), deadline_seconds=0.0)
        error = excinfo.value
        assert error.reason == "deadline"
        assert error.queue_depth is not None and error.queue_depth >= 0
        assert error.workers_busy is not None and error.workers_busy >= 0
        assert error.workers_total is not None and error.workers_total >= 1

    def test_protocol_round_trip_preserves_context(self):
        original = ServiceOverloadedError(
            "queue_full",
            "97 queued",
            queue_depth=97,
            workers_busy=3,
            workers_total=4,
        )
        original.trace_id = "trace-ff"
        decoded = decode_error(encode_error(original))
        assert isinstance(decoded, ServiceOverloadedError)
        assert decoded.reason == "queue_full"
        assert decoded.queue_depth == 97
        assert decoded.workers_busy == 3
        assert decoded.workers_total == 4
        assert decoded.trace_id == "trace-ff"

    def test_protocol_round_trip_without_context(self):
        decoded = decode_error(encode_error(ServiceOverloadedError("deadline")))
        assert isinstance(decoded, ServiceOverloadedError)
        assert decoded.queue_depth is None
        assert decoded.workers_busy is None
        assert decoded.workers_total is None


# ---------------------------------------------------------------------- #
# server metrics
# ---------------------------------------------------------------------- #


class TestServerMetrics:
    def test_families_cover_every_layer(self, client):
        client.query(build_paper_query())
        client.ingest(labels=["A"], edges=[], graph="paper")
        snapshot = client.server_metrics(graph="paper")
        for family in [
            "session_cache_hits_total",
            "session_cache_misses_total",
            "store_applies_total",
            "store_pins_total",
            "store_head_version",
            "service_submitted_total",
            "service_completed_total",
            "service_queue_depth",
            "service_workers_busy",
            "service_workers_total",
            "engine_queries_total",
            "engine_candidates_total",
            "server_requests_total",
            "server_bytes_sent_total",
        ]:
            assert family in snapshot, family

    def test_server_request_counters_attribute_by_op(self, client):
        client.query(build_paper_query())
        client.query(build_paper_query())
        snapshot = client.server_metrics(graph="paper")
        by_op = {
            value["labels"]["op"]: value["value"]
            for value in snapshot["server_requests_total"]["values"]
        }
        assert by_op.get("query", 0) >= 2
        bytes_sent = snapshot["server_bytes_sent_total"]["values"][0]["value"]
        assert bytes_sent > 0

    def test_stream_counter_increments(self, client):
        before = client.server_metrics(graph="paper").get(
            "server_streams_opened_total"
        )
        stream = client.stream(build_paper_query(), page_size=8)
        list(stream)
        stream.report()
        after = client.server_metrics(graph="paper")["server_streams_opened_total"]
        count = after["values"][0]["value"]
        previous = before["values"][0]["value"] if before else 0
        assert count == previous + 1

    def test_prometheus_format_over_wire(self, client):
        client.query(build_paper_query())
        text = client.server_metrics(graph="paper", format="prometheus")
        assert isinstance(text, str)
        assert "# TYPE service_completed_total counter" in text
        assert "service_completed_total" in text

    def test_wal_families_for_durable_tenant(self, tmp_path):
        with GraphServer(data_dir=str(tmp_path / "data")) as srv:
            with GraphClient(*srv.address, timeout=60.0) as cli:
                graph = build_paper_graph()
                cli.create_graph(
                    "durable", labels=graph.labels, edges=graph.edges(), switch=True
                )
                cli.ingest(labels=["A"], edges=[])
                cli.checkpoint()
                snapshot = cli.server_metrics()
        for family in [
            "wal_journal_entries_total",
            "wal_checkpoints_total",
        ]:
            assert family in snapshot, family
        journalled = snapshot["wal_journal_entries_total"]["values"][0]["value"]
        assert journalled >= 1

    def test_disabled_telemetry_tenant_raises(self, server):
        db = GraphDB.from_edges(["A"], [], telemetry=None)
        server.catalog.attach("dark", db, owned=True)
        with GraphClient(*server.address, timeout=60.0, graph="dark") as cli:
            with pytest.raises(StoreError):
                cli.server_metrics()


# ---------------------------------------------------------------------- #
# slow-query log over the wire
# ---------------------------------------------------------------------- #


class TestSlowQueriesOp:
    @pytest.fixture
    def slow_client(self, server):
        graph = build_paper_graph()
        db = GraphDB.open(graph, telemetry=Telemetry(slow_query_seconds=0.0))
        server.catalog.attach("slow", db, owned=True)
        with GraphClient(*server.address, timeout=60.0, graph="slow") as cli:
            yield cli

    def test_entries_returned_oldest_first(self, slow_client):
        slow_client.query(build_paper_query(), name="first")
        slow_client.query(build_paper_query(), name="second")
        entries = slow_client.slow_queries()
        names = [entry["query"] for entry in entries]
        assert names[-2:] == ["first", "second"]
        for entry in entries:
            assert entry["seconds"] >= 0.0
            assert entry["engine"] == "GM"
            assert entry["status"] == "ok"

    def test_traced_entry_carries_span_tree(self, slow_client):
        trace_id = new_trace_id()
        slow_client.query(build_paper_query(), trace_id=trace_id)
        entries = slow_client.slow_queries(limit=1)
        assert len(entries) == 1
        trace = entries[0]["trace"]
        assert trace["trace_id"] == trace_id
        assert any(span["name"] == "plan" for span in trace["spans"])

    def test_limit(self, slow_client):
        for index in range(4):
            slow_client.query(build_paper_query(), name=f"q{index}")
        assert len(slow_client.slow_queries(limit=2)) == 2

    def test_empty_without_threshold(self, client):
        client.query(build_paper_query())
        assert client.slow_queries(graph="paper") == ()
