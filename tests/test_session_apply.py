"""Tests for version-aware session invalidation: QuerySession.apply()."""

import pytest

from fixtures_paper import A1, B0, C0, PAPER_ANSWER
from repro.dynamic import GraphDelta, MutableDataGraph
from repro.engines.base import expand_descendant_edges
from repro.exceptions import EngineError
from repro.engines.binary_join import BinaryJoinEngine
from repro.session import QuerySession


@pytest.fixture()
def session(paper_graph) -> QuerySession:
    return QuerySession(paper_graph)


def _new_a_delta(graph):
    """A new A-node pointing at b0 and c0: adds exactly one GM match."""
    delta = GraphDelta.for_graph(graph)
    node = delta.add_node("A")
    delta.add_edge(node, B0)
    delta.add_edge(node, C0)
    return delta, node


class TestApplySemantics:
    def test_apply_bumps_version_and_updates_answers(self, session, paper_query):
        assert session.version == 0
        assert session.query(paper_query).occurrence_set() == PAPER_ANSWER
        delta, node = _new_a_delta(session.graph)
        report = session.apply(delta)
        assert session.version == 1
        assert report.old_version == 0 and report.new_version == 1
        answers = session.query(paper_query).occurrence_set()
        assert (node, B0, C0) in answers
        assert PAPER_ANSWER < answers

    def test_patched_equals_cold_session(self, session, paper_graph, paper_query):
        session.query(paper_query)
        session.transitive_closure
        session.label_bitmaps
        session.bitmap_universe
        session.partitions
        delta, _node = _new_a_delta(paper_graph)
        session.apply(delta)
        cold_graph = MutableDataGraph(
            paper_graph, GraphDelta.from_dict(delta.to_dict())
        ).materialize()
        cold = QuerySession(cold_graph)
        for engine in ("GM", "GM-F", "Neo4j", "EH", "GF", "RM", "JM", "TM"):
            assert (
                session.query(paper_query, engine=engine).occurrence_set()
                == cold.query(paper_query, engine=engine).occurrence_set()
            ), engine

    def test_insert_only_delta_patches_expensive_artifacts(self, session, paper_query):
        session.query(paper_query)
        session.transitive_closure
        session.label_bitmaps
        session.partitions
        delta, _node = _new_a_delta(session.graph)
        report = session.apply(delta)
        assert "reachability" in report.patched
        assert "closure" in report.patched
        assert "partitions" in report.patched
        assert "bitmaps" in report.patched
        assert session.stats.patches("reachability") == 1
        assert session.stats.invalidations("reachability") == 0
        # the reachability index was not rebuilt by the next query
        misses_before = session.stats.misses("reachability")
        session.query(paper_query)
        assert session.stats.misses("reachability") == misses_before

    def test_removal_delta_invalidates_reachability(self, session, paper_query):
        session.query(paper_query)
        session.transitive_closure
        delta = GraphDelta.for_graph(session.graph).remove_edge(A1, B0)
        report = session.apply(delta)
        assert "reachability" in report.invalidated
        assert "closure" in report.invalidated
        assert session.stats.invalidations("reachability") == 1
        # answers reflect the removal (rebuilt lazily)
        answers = session.query(paper_query).occurrence_set()
        assert all(occ[:2] != (A1, B0) for occ in answers)
        assert session.stats.misses("reachability") == 2  # initial + rebuild

    def test_unbuilt_artifacts_are_untouched(self, session):
        # nothing built yet: apply reports no patches/invalidation of indexes
        delta, _node = _new_a_delta(session.graph)
        report = session.apply(delta)
        assert report.patched == []
        assert set(report.invalidated) <= {"rig", "matcher"}

    def test_rig_cache_is_version_keyed(self, session, paper_query):
        first = session.query(paper_query)
        assert first.extra["rig_cached"] is False
        assert session.query(paper_query).extra["rig_cached"] is True
        delta, _node = _new_a_delta(session.graph)
        session.apply(delta)
        assert session.stats.invalidations("rig") == 1
        # post-apply the old RIG is stranded: the same query rebuilds it
        post = session.query(paper_query)
        assert post.extra["rig_cached"] is False
        assert session.query(paper_query).extra["rig_cached"] is True

    def test_apply_overlay_mode(self, session, paper_query):
        before = session.query(paper_query).occurrence_set()
        delta, node = _new_a_delta(session.graph)
        session.apply(delta, materialize=False)
        assert isinstance(session.graph, MutableDataGraph)
        answers = session.query(paper_query).occurrence_set()
        assert (node, B0, C0) in answers and before < answers

    def test_overlay_mode_applies_never_stack(self, session, paper_query):
        for _round in range(3):
            delta, _node = _new_a_delta(session.graph)
            session.apply(delta, materialize=False)
        # the previous overlay is compacted before the next is layered, so
        # reads always sit one delegation level above an immutable base
        assert isinstance(session.graph, MutableDataGraph)
        assert not isinstance(session.graph.base, MutableDataGraph)
        assert session.version == 3
        cold = QuerySession(session.graph.materialize())
        assert (
            session.query(paper_query).occurrence_set()
            == cold.query(paper_query).occurrence_set()
        )

    def test_noop_delta_changes_nothing(self, session, paper_query):
        session.query(paper_query)
        session.transitive_closure
        graph_before = session.graph
        counters_before = session.stats.full_snapshot()
        # every op is a no-op: the edge exists, the label is unchanged
        delta = GraphDelta.for_graph(session.graph)
        delta.add_edge(A1, B0)
        delta.relabel(A1, "A")
        report = session.apply(delta)
        assert report.num_ops == 0
        assert report.old_version == report.new_version == 0
        assert report.patched == [] and report.invalidated == []
        assert session.graph is graph_before
        assert session.stats.full_snapshot() == counters_before
        # the RIG cache survives: the same query is still served warm
        assert session.query(paper_query).extra["rig_cached"] is True

    def test_successive_applies(self, session, paper_query):
        session.query(paper_query)
        for expected_version in (1, 2, 3):
            delta, _node = _new_a_delta(session.graph)
            session.apply(delta)
            assert session.version == expected_version
        cold = QuerySession(session.graph)
        assert (
            session.query(paper_query).occurrence_set()
            == cold.query(paper_query).occurrence_set()
        )

    def test_batch_after_apply(self, session, paper_query):
        session.run_batch({"q": paper_query})
        delta, node = _new_a_delta(session.graph)
        session.apply(delta)
        batch = session.run_batch({"q": paper_query})
        assert (node, B0, C0) in batch.answers()["q"]


class TestClearContract:
    def test_clear_resets_counters(self, session, paper_query):
        session.query(paper_query)
        delta, _node = _new_a_delta(session.graph)
        session.apply(delta)
        assert session.stats.total_misses > 0
        session.clear()
        assert session.stats.total_misses == 0
        assert session.stats.total_hits == 0
        assert session.stats.total_invalidations == 0
        assert session.stats.total_patches == 0
        # post-clear hit-rate math starts from scratch
        session.query(paper_query)
        assert session.stats.misses("reachability") == 1
        assert session.stats.hits("reachability") == 0


class TestEngineVersionChecks:
    def test_stale_expanded_graph_rejected(self, paper_graph, paper_query):
        expanded, _seconds = expand_descendant_edges(paper_graph)
        delta, _node = _new_a_delta(paper_graph)
        patched = MutableDataGraph(paper_graph, delta).materialize()
        # expanded graph built for version 0 injected next to the v1 graph
        with pytest.raises(EngineError, match="stale"):
            BinaryJoinEngine(patched, expanded_graph=expanded)

    def test_matching_expanded_graph_accepted(self, paper_graph, paper_query):
        expanded, _seconds = expand_descendant_edges(paper_graph)
        assert expanded.version == paper_graph.version
        engine = BinaryJoinEngine(paper_graph, expanded_graph=expanded)
        result = engine.match(paper_query)
        assert result.report.num_matches > 0

    def test_stale_lazy_provider_rejected(self, paper_graph, paper_query):
        expanded, _seconds = expand_descendant_edges(paper_graph)
        delta, _node = _new_a_delta(paper_graph)
        patched = MutableDataGraph(paper_graph, delta).materialize()
        engine = BinaryJoinEngine(patched, expanded_graph=lambda: expanded)
        with pytest.raises(EngineError, match="stale"):
            engine.match(paper_query)

    def test_session_reinjects_fresh_artifacts_after_apply(self, session, paper_query):
        # engines served through the session always see matching versions
        session.query(paper_query, engine="Neo4j")
        delta, _node = _new_a_delta(session.graph)
        session.apply(delta)
        report = session.query(paper_query, engine="Neo4j")
        assert report.num_matches > 0
