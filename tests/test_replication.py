"""Replication tests: log shipping, replica tailing, routed reads, failover.

Four layers, bottom-up:

* :meth:`GraphDB.open_replica` — snapshot bootstrap, live tailing, and
  element-for-element version identity with the primary on the paper
  fixture;
* :class:`ReplicaServer` — the full read surface over the wire, typed
  rejection of writes, replica status and lag metric families;
* the crash bar — a SIGKILL'd replica process restarted over the same
  ``data_dir`` resubscribes *from its recovered version* (tail mode, no
  re-bootstrap) and converges to the primary's head;
* the failover bar — :class:`RoutedClient` keeps serving bounded-staleness
  reads from surviving replicas after the primary is SIGKILL'd, and
  reports writes unavailable with a typed error.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from fixtures_paper import PAPER_ANSWER, build_paper_graph
from repro.api import GraphDB
from repro.client import GraphClient, RoutedClient
from repro.exceptions import PrimaryUnavailableError, ReadOnlyReplicaError
from repro.replication import ReplicaServer
from repro.server import GraphServer

pytestmark = pytest.mark.timeout(120)

PAPER_DSL = (
    "node a A\nnode b B\nnode c C\n"
    "edge a -> b\nedge a -> c\nedge b => c"
)


def wait_until(predicate, timeout=30.0, interval=0.02, message="condition"):
    """Poll ``predicate`` until it holds; replication is asynchronous."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {message}")


def _child_env():
    src_dir = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(src_dir) + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    return env


def _read_address(child):
    line = child.stdout.readline().strip()
    assert line, "child process never announced its address"
    host, port = line.split()
    return host, int(port)


def _terminate(child):
    if child.poll() is None:
        child.kill()
        child.wait(timeout=30.0)


# ---------------------------------------------------------------------- #
# GraphDB.open_replica: bootstrap, tail, version identity
# ---------------------------------------------------------------------- #


class TestReplicaTail:
    def test_bootstrap_tail_and_version_identity(self, tmp_path):
        graph = build_paper_graph()
        with GraphServer(data_dir=str(tmp_path / "primary")) as server:
            host, port = server.address
            with GraphClient(host, port, timeout=60.0) as client:
                client.create_graph(
                    "paper", labels=graph.labels, edges=graph.edges()
                )
                base = client.num_nodes
                client.ingest(labels=["D"], edges=[(0, base)])
                client.ingest(labels=["D"], edges=[(base, base + 1)])
                # checkpoint mid-history: the replica bootstraps from this
                # snapshot and catches up the post-checkpoint tail.
                client.checkpoint()
                client.ingest(labels=["D"], edges=[(base + 1, base + 2)])

            primary_db = server.catalog.get("paper")
            replica_db = GraphDB.open_replica(host, port, "paper")
            try:
                assert replica_db.read_only is True
                wait_until(
                    lambda: replica_db.head_version == primary_db.head_version,
                    message="replica to reach the primary head",
                )
                # element-for-element identity at the shared version
                assert replica_db.head_version == 3
                assert replica_db.graph == primary_db.graph
                assert replica_db.graph.labels == primary_db.graph.labels
                assert sorted(replica_db.graph.edges()) == sorted(
                    primary_db.graph.edges()
                )
                # the replica serves the read surface at that version
                assert (
                    replica_db.query(PAPER_DSL).occurrence_set() == PAPER_ANSWER
                )
                assert replica_db.count(PAPER_DSL) == len(PAPER_ANSWER)

                # live tailing: new primary folds appear without re-subscribe
                with GraphClient(host, port, timeout=60.0) as client:
                    client.ingest(
                        labels=["D"], edges=[(base + 2, base + 3)], graph="paper"
                    )
                wait_until(
                    lambda: replica_db.head_version == primary_db.head_version
                    == 4,
                    message="replica to tail the new fold",
                )
                assert replica_db.graph == primary_db.graph

                status = replica_db.replication_status()
                assert status["connected"] is True
                assert status["head_version"] == 4
                assert status["lag_versions"] == 0
                assert status["bootstraps"] == 1  # the initial snapshot only
            finally:
                replica_db.close()

    def test_replica_is_read_only_in_process(self, tmp_path):
        graph = build_paper_graph()
        with GraphServer(data_dir=str(tmp_path / "primary")) as server:
            host, port = server.address
            with GraphClient(host, port, timeout=60.0) as client:
                client.create_graph(
                    "paper", labels=graph.labels, edges=graph.edges()
                )
            replica_db = GraphDB.open_replica(host, port, "paper")
            try:
                wait_until(
                    lambda: replica_db.head_version == 0,
                    message="replica bootstrap",
                )
                assert replica_db.read_only is True
                with pytest.raises(ReadOnlyReplicaError):
                    replica_db.ingest(labels=["C"], edges=[(0, 1)])
                with pytest.raises(ReadOnlyReplicaError):
                    replica_db.apply(replica_db.delta())
                with pytest.raises(ReadOnlyReplicaError):
                    replica_db.checkpoint()
            finally:
                replica_db.close()


# ---------------------------------------------------------------------- #
# ReplicaServer: the wire surface of a replica
# ---------------------------------------------------------------------- #


class TestReplicaServer:
    def test_reads_served_writes_rejected_metrics_present(self, tmp_path):
        graph = build_paper_graph()
        with GraphServer(data_dir=str(tmp_path / "primary")) as server:
            host, port = server.address
            with GraphClient(host, port, timeout=60.0) as client:
                client.create_graph(
                    "paper", labels=graph.labels, edges=graph.edges()
                )
                base = client.num_nodes
                client.ingest(labels=["D"], edges=[(0, base)])

            with ReplicaServer(host, port) as replica:
                rhost, rport = replica.address
                with GraphClient(rhost, rport, timeout=60.0) as client:
                    client.use("paper")
                    wait_until(
                        lambda: client.info()["head_version"] == 1,
                        message="replica server catch-up",
                    )
                    # the full read surface, served at the replicated version
                    report = client.query(PAPER_DSL)
                    assert report.occurrence_set() == PAPER_ANSWER
                    assert client.count(PAPER_DSL) == len(PAPER_ANSWER)
                    assert client.histogram(PAPER_DSL)
                    assert client.explain(PAPER_DSL) is not None
                    with client.stream(PAPER_DSL) as stream:
                        assert set(stream) == PAPER_ANSWER

                    # writes are rejected with the typed error
                    with pytest.raises(ReadOnlyReplicaError):
                        client.ingest(labels=["D"], edges=())
                    with pytest.raises(ReadOnlyReplicaError):
                        client.checkpoint()

                    # replica status over the wire
                    status = client.replica_status()
                    assert status["replica"] is True
                    assert status["read_only"] is True
                    assert status["head_version"] == 1
                    assert status["lag_versions"] == 0

                    # lag metric families are in the replica's server metrics
                    metrics = client.server_metrics()
                    assert "replication_lag_versions" in metrics
                    assert "replication_lag_seconds" in metrics
                    assert "replication_connected" in metrics
                    assert "replication_frames_applied_total" in metrics
                    lag = metrics["replication_lag_versions"]["values"]
                    assert lag and lag[0]["value"] == 0


# ---------------------------------------------------------------------- #
# the crash bar: SIGKILL a replica mid-tail, restart, converge
# ---------------------------------------------------------------------- #


CHILD_REPLICA = textwrap.dedent(
    """
    import sys, time
    from repro.replication import ReplicaServer

    replica = ReplicaServer(sys.argv[1], int(sys.argv[2]), data_dir=sys.argv[3])
    host, port = replica.start()
    print(f"{host} {port}", flush=True)
    time.sleep(600)  # hold the replica until the parent SIGKILLs us
    """
)


CHILD_PRIMARY = textwrap.dedent(
    """
    import sys, time
    from repro.server import GraphServer

    server = GraphServer(data_dir=sys.argv[1])
    host, port = server.start()
    print(f"{host} {port}", flush=True)
    time.sleep(600)  # hold the primary until the parent SIGKILLs us
    """
)


class TestReplicaCrashRecovery:
    def test_sigkill_replica_resubscribes_from_version(self, tmp_path):
        graph = build_paper_graph()
        replica_dir = str(tmp_path / "replica")
        with GraphServer(data_dir=str(tmp_path / "primary")) as server:
            host, port = server.address
            with GraphClient(host, port, timeout=60.0) as client:
                client.create_graph(
                    "paper", labels=graph.labels, edges=graph.edges()
                )
                base = client.num_nodes
                client.ingest(labels=["D"], edges=[(0, base)])

                child = subprocess.Popen(
                    [sys.executable, "-c", CHILD_REPLICA, host, str(port),
                     replica_dir],
                    stdout=subprocess.PIPE,
                    env=_child_env(),
                    text=True,
                )
                try:
                    rhost, rport = _read_address(child)
                    with GraphClient(rhost, rport, timeout=60.0) as rclient:
                        rclient.use("paper")
                        wait_until(
                            lambda: rclient.info()["head_version"] == 1,
                            message="replica catch-up before the kill",
                        )
                    # kill mid-tail, then advance the primary while it is down
                    os.kill(child.pid, signal.SIGKILL)
                    child.wait(timeout=30.0)
                finally:
                    _terminate(child)

                client.ingest(labels=["D"], edges=[(base, base + 1)])
                client.ingest(labels=["D"], edges=[(base + 1, base + 2)])
                head = client.info()["head_version"]
                assert head == 3
                expected = client.query(PAPER_DSL).occurrence_set()

                # restart over the same data_dir: the recovered replica must
                # resubscribe from its pre-crash version and catch up by
                # tailing — not by shipping a fresh snapshot.
                child = subprocess.Popen(
                    [sys.executable, "-c", CHILD_REPLICA, host, str(port),
                     replica_dir],
                    stdout=subprocess.PIPE,
                    env=_child_env(),
                    text=True,
                )
                try:
                    rhost, rport = _read_address(child)
                    with GraphClient(rhost, rport, timeout=60.0) as rclient:
                        rclient.use("paper")
                        wait_until(
                            lambda: rclient.info()["head_version"] == head,
                            message="replica convergence after restart",
                        )
                        status = rclient.replica_status()
                        assert status["replica"] is True
                        assert status["mode"] == "tail"
                        assert status["bootstraps"] == 0
                        assert status["head_version"] == head
                        info = rclient.info()
                        pinfo = client.info()
                        assert info["num_nodes"] == pinfo["num_nodes"]
                        assert info["num_edges"] == pinfo["num_edges"]
                        assert (
                            rclient.query(PAPER_DSL).occurrence_set()
                            == expected == PAPER_ANSWER
                        )
                finally:
                    _terminate(child)


# ---------------------------------------------------------------------- #
# the failover bar: primary dies, routed reads keep flowing
# ---------------------------------------------------------------------- #


class TestRoutedFailover:
    def test_primary_sigkill_reads_survive_writes_typed(self, tmp_path):
        graph = build_paper_graph()
        data_dir = str(tmp_path / "primary")
        child = subprocess.Popen(
            [sys.executable, "-c", CHILD_PRIMARY, data_dir],
            stdout=subprocess.PIPE,
            env=_child_env(),
            text=True,
        )
        replicas = []
        routed = None
        try:
            host, port = _read_address(child)
            with GraphClient(host, port, timeout=60.0) as client:
                client.create_graph(
                    "paper", labels=graph.labels, edges=graph.edges()
                )
                base = client.num_nodes
            for _ in range(2):
                replica = ReplicaServer(host, port)
                replica.start()
                replicas.append(replica)

            routed = RoutedClient(
                (host, port),
                replicas=[replica.address for replica in replicas],
                graph="paper",
                timeout=60.0,
            )
            # a read-your-writes write through the router
            routed.ingest(labels=["D"], edges=[(0, base)])
            assert routed.count(PAPER_DSL) == len(PAPER_ANSWER)
            wait_until(
                lambda: all(
                    status.get("head_version") == 1
                    for status in routed.replica_status()
                    if status.get("reachable")
                ),
                message="both replicas to reach the written version",
            )

            os.kill(child.pid, signal.SIGKILL)
            child.wait(timeout=30.0)

            # reads keep flowing from the surviving replicas, under the
            # read-your-writes floor of the last write
            assert (
                routed.query(PAPER_DSL).occurrence_set() == PAPER_ANSWER
            )
            assert routed.count(PAPER_DSL) == len(PAPER_ANSWER)

            # writes are unavailable, with the typed error
            with pytest.raises(PrimaryUnavailableError):
                routed.ingest(labels=["D"], edges=())

            # reads were actually served by replicas
            reads = routed.local_metrics()["routed_reads_total"]["values"]
            replica_reads = sum(
                sample["value"]
                for sample in reads
                if sample["labels"].get("target") != "primary"
            )
            assert replica_reads >= 2
        finally:
            if routed is not None:
                routed.close()
            for replica in replicas:
                replica.close()
            _terminate(child)
