"""Tests for the benchmark harness, the experiment drivers and the examples."""

import runpy
import sys
from pathlib import Path

import pytest

from repro.bench.experiments import ALL_EXPERIMENTS, ExperimentReport, fig08_hybrid_queries
from repro.bench.harness import (
    DEFAULT_BENCH_BUDGET,
    QueryRun,
    WorkloadResult,
    available_matchers,
    make_matcher,
    run_workload,
)
from repro.bench.reporting import format_series, format_table
from repro.bench.run_all import main as run_all_main
from repro.bench.workloads import (
    bench_graph,
    query_set,
    random_query_set,
    representative_templates,
    template_class,
)
from repro.matching.result import Budget
from repro.simulation.context import MatchContext

TINY_BUDGET = Budget(max_matches=500, time_limit_seconds=5.0, max_intermediate_results=50_000)
EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


class TestWorkloads:
    def test_bench_graph_cached(self):
        assert bench_graph("em", scale=0.1) is bench_graph("em", scale=0.1)

    def test_representative_templates_cover_classes(self):
        templates = representative_templates(per_class=2)
        assert len(templates) == 8
        classes = {template_class(name) for name in templates}
        assert classes == {"acyclic", "cyclic", "clique", "combo"}

    def test_query_set_kinds(self):
        graph = bench_graph("em", scale=0.1)
        hybrid = query_set(graph, kind="H", templates=("HQ3",))
        child = query_set(graph, kind="C", templates=("HQ3",))
        descendant = query_set(graph, kind="D", templates=("HQ3",))
        assert set(hybrid) == {"HQ3"}
        assert set(child) == {"CQ3"}
        assert set(descendant) == {"DQ3"}
        assert all(edge.is_child for edge in child["CQ3"].edges())
        with pytest.raises(ValueError):
            query_set(graph, kind="X")

    def test_random_query_set(self):
        graph = bench_graph("em", scale=0.1)
        queries = random_query_set(graph, (4, 6), kind="D", per_size=2)
        assert len(queries) == 4
        assert all(all(edge.is_descendant for edge in q.edges()) for q in queries.values())


class TestHarness:
    def test_all_matchers_constructible(self):
        graph = bench_graph("em", scale=0.1)
        context = MatchContext(graph)
        for name in available_matchers():
            matcher = make_matcher(name, graph, context, TINY_BUDGET)
            assert matcher is not None

    def test_unknown_matcher(self):
        graph = bench_graph("em", scale=0.1)
        with pytest.raises(KeyError):
            make_matcher("nope", graph, MatchContext(graph), TINY_BUDGET)

    def test_run_workload_produces_runs(self):
        graph = bench_graph("em", scale=0.1)
        queries = query_set(graph, kind="H", templates=("HQ0", "HQ4"))
        result = run_workload(graph, queries, ("GM", "TM"), budget=TINY_BUDGET)
        assert len(result.runs) == 4
        assert result.solved_count("GM") == 2
        assert result.average_time("GM") >= 0.0
        assert result.run_for("TM", "HQ0") is not None
        assert result.run_for("TM", "missing") is None
        assert set(result.by_matcher()) == {"GM", "TM"}

    def test_same_answers_across_matchers(self):
        graph = bench_graph("em", scale=0.1)
        queries = query_set(graph, kind="H", templates=("HQ0",))
        result = run_workload(graph, queries, ("GM", "TM", "JM"), budget=TINY_BUDGET)
        counts = {run.matcher: run.matches for run in result.runs}
        assert counts["GM"] == counts["TM"] == counts["JM"]

    def test_query_run_solved_property(self):
        assert QueryRun("GM", "q", 0.0, 1, "ok").solved
        assert QueryRun("GM", "q", 0.0, 1, "match_limit").solved
        assert not QueryRun("GM", "q", 0.0, 0, "timeout").solved

    def test_default_budget_has_limits(self):
        assert DEFAULT_BENCH_BUDGET.max_matches is not None
        assert DEFAULT_BENCH_BUDGET.time_limit_seconds is not None


class TestReporting:
    def test_format_table(self):
        text = format_table(("a", "b"), [(1, 2.5), ("x", "y")], title="T")
        assert "T" in text
        assert "2.5000" in text
        assert text.count("\n") == 4

    def test_format_series(self):
        text = format_series({"GM": [0.1, 0.2]}, ["5", "10"], title="S")
        assert "GM" in text and "0.1000s" in text


class TestExperimentDrivers:
    def test_registry_complete(self):
        assert set(ALL_EXPERIMENTS) == {
            "fig08", "fig09", "table3", "fig10", "fig11", "fig12", "fig13",
            "fig15", "table4", "fig16", "table5", "fig17", "fig18", "table6",
        }

    def test_fig08_structure(self):
        report = fig08_hybrid_queries(datasets=("em",), scale=0.08, budget=TINY_BUDGET, per_class=1)
        assert isinstance(report, ExperimentReport)
        assert report.experiment_id == "Fig8"
        assert report.headers[0] == "dataset"
        matchers = {row[2] for row in report.rows}
        assert matchers == {"GM", "TM", "JM"}
        assert "Fig8" in report.text()

    @pytest.mark.parametrize("name", ["table3", "fig12", "fig13", "table4", "table6"])
    def test_small_scale_drivers_run(self, name):
        driver = ALL_EXPERIMENTS[name]
        if name == "fig12":
            report = driver(scale=0.08)
        elif name == "table3":
            report = driver(datasets=("yt",), scale=0.08, budget=TINY_BUDGET, node_counts=(4,), per_size=1)
        else:
            report = driver(scale=0.08, budget=TINY_BUDGET)
        assert report.rows
        assert len(report.headers) >= 4

    def test_run_all_cli_subset(self, tmp_path, capsys):
        output = tmp_path / "out.txt"
        exit_code = run_all_main(["table6", "--scale", "0.08", "--output", str(output)])
        assert exit_code == 0
        assert output.exists()
        captured = capsys.readouterr()
        assert "Table6" in captured.out

    def test_run_all_cli_rejects_unknown(self):
        with pytest.raises(SystemExit):
            run_all_main(["not-an-experiment"])


class TestExamples:
    @pytest.mark.parametrize(
        "script",
        ["quickstart.py", "citation_network.py", "money_laundering.py", "supply_chain.py"],
    )
    def test_example_runs(self, script, capsys):
        path = EXAMPLES_DIR / script
        assert path.exists()
        runpy.run_path(str(path), run_name="__main__")
        captured = capsys.readouterr()
        assert "occurrence" in captured.out or "patterns" in captured.out
