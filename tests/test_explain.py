"""EXPLAIN / EXPLAIN ANALYZE: plan introspection across every surface.

Cross-engine parity on the paper's running example: EXPLAIN ANALYZE root
row counts must reconcile exactly with each evaluator's own eager
:class:`MatchReport` (GM and the JM baseline answer the paper answer; the
four comparator engines answer the descendant-relaxed query their closure
mode actually evaluates — the reconciliation contract is against *their
own* report, see ``test_engines.py``).  Also covered: truncated (first-k)
reconciliation, plan digests flowing into the slow-query log, the wire
``explain`` op via :class:`GraphClient`, render determinism, and the
structured-logging satellite.
"""

from __future__ import annotations

import io
import json
import logging

import pytest

from fixtures_paper import PAPER_ANSWER, build_paper_graph, build_paper_query
from repro.api import GraphDB
from repro.client import GraphClient
from repro.engines.binary_join import BinaryJoinEngine
from repro.engines.relational import RelationalEngine
from repro.engines.treedecomp import TreeDecompEngine
from repro.engines.wcoj import WCOJEngine
from repro.explain import PlanOperator, QueryPlan, plan_digest
from repro.matching.gm import GraphMatcher
from repro.matching.result import Budget
from repro.obs import Telemetry
from repro.obs.log import TenantLoggerAdapter, configure, get_logger
from repro.server import GraphServer
from repro.session import QuerySession

pytestmark = pytest.mark.timeout(120)

ENGINE_CLASSES = [BinaryJoinEngine, RelationalEngine, WCOJEngine, TreeDecompEngine]

PAPER_DSL = (
    "node a A\nnode b B\nnode c C\n"
    "edge a -> b\nedge a -> c\nedge b => c"
)


@pytest.fixture
def paper_graph():
    return build_paper_graph()


@pytest.fixture
def paper_query():
    return build_paper_query()


# ---------------------------------------------------------------------- #
# GM: the paper pipeline
# ---------------------------------------------------------------------- #


class TestGMExplain:
    def test_plan_only_never_enumerates(self, paper_graph, paper_query):
        plan = GraphMatcher(paper_graph).explain(paper_query)
        assert isinstance(plan, QueryPlan)
        assert plan.analyze is False
        assert plan.engine == "GM"
        assert plan.root.actual == {}
        assert plan.execution == {}
        assert len(plan.vertex_order) == len(list(paper_query.nodes()))
        # Every extend step carries a RIG candidate-set estimate.
        for child in plan.root.children:
            assert child.estimate is not None and child.estimate > 0

    def test_digest_is_canonical(self, paper_graph, paper_query):
        plan = GraphMatcher(paper_graph).explain(paper_query)
        assert plan.digest() == plan_digest(
            plan.engine, plan.ordering, plan.vertex_order
        )
        # Deterministic across repeated planning of the same query.
        again = GraphMatcher(paper_graph).explain(paper_query)
        assert again.digest() == plan.digest()

    def test_analyze_reconciles_with_eager_report(self, paper_graph, paper_query):
        matcher = GraphMatcher(paper_graph)
        plan = matcher.explain(paper_query, analyze=True)
        report = matcher.match(paper_query)
        assert plan.analyze is True
        assert plan.root.actual["rows"] == report.num_matches == len(PAPER_ANSWER)
        assert plan.execution["rows"] == report.num_matches
        # One actual-counter column per extend step, none missing.
        for child in plan.root.children:
            assert "rows" in child.actual
            assert "candidates" in child.actual

    def test_analyze_first_k_reconciles_with_truncated_prefix(
        self, paper_graph, paper_query
    ):
        budget = Budget(max_matches=2)
        matcher = GraphMatcher(paper_graph)
        plan = matcher.explain(paper_query, analyze=True, budget=budget)
        report = matcher.match(paper_query, budget=budget)
        assert plan.root.actual["rows"] == report.num_matches == 2

    def test_report_carries_matching_plan_digest(self, paper_graph, paper_query):
        matcher = GraphMatcher(paper_graph)
        plan = matcher.explain(paper_query)
        report = matcher.match(paper_query)
        assert report.extra["plan_digest"] == plan.digest()

    def test_render_is_deterministic_and_structured(self, paper_graph, paper_query):
        matcher = GraphMatcher(paper_graph)
        plan = matcher.explain(paper_query, analyze=True)
        text = plan.render()
        assert text == plan.render()
        assert text.startswith("EXPLAIN ANALYZE")
        assert "vertex order:" in text
        assert "artifacts:" in text
        assert "execution:" in text
        assert "est=" in text and "act=" in text
        plain = GraphMatcher(paper_graph).explain(paper_query).render()
        assert plain.startswith("EXPLAIN  ")
        assert "act=" not in plain

    def test_wire_and_dict_round_trips(self, paper_graph, paper_query):
        plan = GraphMatcher(paper_graph).explain(paper_query, analyze=True)
        via_dict = QueryPlan.from_dict(plan.to_dict())
        via_wire = QueryPlan.from_wire(plan.to_wire())
        assert via_dict.render() == plan.render()
        assert via_wire.render() == plan.render()
        assert via_wire.digest() == plan.digest()
        json.dumps(plan.to_wire())  # the wire form is pure JSON


# ---------------------------------------------------------------------- #
# comparator engines
# ---------------------------------------------------------------------- #


class TestEngineExplain:
    @pytest.mark.parametrize("engine_class", ENGINE_CLASSES)
    def test_plan_only_has_operator_tree(self, engine_class, paper_graph, paper_query):
        plan = engine_class(paper_graph).explain(paper_query)
        assert plan.analyze is False
        assert plan.engine == engine_class.name
        assert plan.root.children, "engines must describe a multi-step tree"
        assert plan.root.actual == {}
        assert "expanded_graph" in plan.artifacts

    @pytest.mark.parametrize("engine_class", ENGINE_CLASSES)
    def test_analyze_root_rows_match_own_eager_report(
        self, engine_class, paper_graph, paper_query
    ):
        # The engines evaluate the descendant-relaxed closure-mode query
        # (5 matches on the paper example, not the 4 of PAPER_ANSWER);
        # the parity contract is against their *own* eager report.
        engine = engine_class(paper_graph)
        plan = engine.explain(paper_query, analyze=True)
        report = engine.match(paper_query).report
        assert plan.root.actual["rows"] == report.num_matches
        assert plan.execution["rows"] == report.num_matches
        assert len(plan.root.children) >= 1
        for child in plan.root.children:
            assert child.actual, "every operator must carry actual counters"

    @pytest.mark.parametrize("engine_class", ENGINE_CLASSES)
    def test_analyze_first_k_reconciles(self, engine_class, paper_graph, paper_query):
        budget = Budget(max_matches=1)
        engine = engine_class(paper_graph)
        plan = engine.explain(paper_query, analyze=True, budget=budget)
        report = engine.match(paper_query, budget=budget).report
        assert plan.root.actual["rows"] == report.num_matches == 1


# ---------------------------------------------------------------------- #
# session / facade
# ---------------------------------------------------------------------- #


class TestSessionAndFacadeExplain:
    def test_session_annotates_cached_artifacts(self, paper_graph, paper_query):
        session = QuerySession(paper_graph)
        first = session.explain(paper_query)
        assert first.artifacts["reachability_kind"] == session.reachability_kind
        assert "session_cached" in first.artifacts
        session.query(paper_query)
        warmed = session.explain(paper_query)
        assert "reachability" in warmed.artifacts["session_cached"]

    def test_session_baseline_degenerate_plan_reconciles(
        self, paper_graph, paper_query
    ):
        session = QuerySession(paper_graph)
        plan = session.explain(paper_query, engine="JM", analyze=True)
        assert plan.engine == "JM"
        assert plan.root.op == "evaluate"
        assert plan.root.children == []
        assert plan.root.actual["rows"] == len(PAPER_ANSWER)

    def test_session_engine_names_dispatch(self, paper_graph, paper_query):
        session = QuerySession(paper_graph)
        for name in ("GF", "Neo4j", "EH", "RM"):
            plan = session.explain(paper_query, engine=name)
            assert plan.engine == name

    def test_graphdb_explain_and_metric(self, paper_graph):
        with GraphDB.from_edges(paper_graph.labels, paper_graph.edges()) as db:
            plan = db.explain(PAPER_DSL)
            assert plan.analyze is False
            analyzed = db.explain(PAPER_DSL, analyze=True)
            report = db.query(PAPER_DSL)
            assert analyzed.root.actual["rows"] == report.num_matches
            assert analyzed.root.actual["rows"] == len(PAPER_ANSWER)
            families = db.metrics()
        values = {
            tuple(sorted(value["labels"].items())): value["value"]
            for value in families["explain_total"]["values"]
        }
        assert values[(("engine", "GM"), ("mode", "plan"))] == 1.0
        assert values[(("engine", "GM"), ("mode", "analyze"))] == 1.0

    def test_snapshot_explain_pins_version(self, paper_graph):
        with GraphDB.from_edges(paper_graph.labels, paper_graph.edges()) as db:
            with db.store.pin() as snapshot:
                plan = snapshot.explain(db._as_query(PAPER_DSL, None), analyze=True)
                assert plan.root.actual["rows"] == len(PAPER_ANSWER)

    def test_slow_log_carries_trace_id_and_plan_digest(self, paper_graph):
        telemetry = Telemetry(slow_query_seconds=0.0)
        with GraphDB.from_edges(
            paper_graph.labels, paper_graph.edges(), telemetry=telemetry
        ) as db:
            db.query(PAPER_DSL, trace_id="feedc0de")
            expected = db.explain(PAPER_DSL).digest()
            entries = db.slow_queries()
        entry = entries[0]
        assert entry["trace_id"] == "feedc0de"
        assert entry["plan_digest"] == expected
        assert entry["trace"]["meta"]["plan_digest"] == expected


# ---------------------------------------------------------------------- #
# the wire
# ---------------------------------------------------------------------- #


@pytest.fixture
def server():
    with GraphServer() as srv:
        yield srv


@pytest.fixture
def client(server, paper_graph):
    with GraphClient(*server.address, timeout=60.0) as cli:
        cli.create_graph(
            "paper", labels=paper_graph.labels, edges=paper_graph.edges(), switch=True
        )
        yield cli


class TestWireExplain:
    def test_remote_plan_matches_local(self, client, paper_graph):
        remote = client.explain(PAPER_DSL)
        with GraphDB.from_edges(paper_graph.labels, paper_graph.edges()) as db:
            local = db.explain(PAPER_DSL)
        assert remote.digest() == local.digest()
        assert remote.vertex_order == local.vertex_order
        assert remote.ordering == local.ordering
        remote_tree = [
            (op.op, op.label, op.estimate) for op in remote.root.walk()
        ]
        local_tree = [(op.op, op.label, op.estimate) for op in local.root.walk()]
        assert remote_tree == local_tree

    def test_remote_analyze_reconciles(self, client):
        plan = client.explain(PAPER_DSL, analyze=True)
        report = client.query(PAPER_DSL)
        assert plan.analyze is True
        assert plan.root.actual["rows"] == report.num_matches == len(PAPER_ANSWER)

    def test_remote_engine_and_budget(self, client):
        plan = client.explain(
            PAPER_DSL, engine="GF", analyze=True, budget=Budget(max_matches=2)
        )
        assert plan.engine == "GF"
        assert plan.root.actual["rows"] == 2

    def test_pinned_snapshot_explain(self, client):
        with client.pin() as snapshot:
            plan = snapshot.explain(PAPER_DSL, analyze=True)
        assert plan.root.actual["rows"] == len(PAPER_ANSWER)


# ---------------------------------------------------------------------- #
# logging satellite
# ---------------------------------------------------------------------- #


class TestLogging:
    def test_server_lifecycle_logs(self, caplog, paper_graph):
        with caplog.at_level(logging.INFO, logger="repro.server"):
            with GraphServer() as srv:
                with GraphClient(*srv.address) as cli:
                    cli.create_graph(
                        "paper", labels=paper_graph.labels, edges=paper_graph.edges()
                    )
                    cli.drop_graph("paper")
        messages = [record.getMessage() for record in caplog.records]
        assert any("listening on" in message for message in messages)
        assert any("client connected" in message for message in messages)
        assert any("created graph 'paper'" in message for message in messages)
        assert any("dropped graph 'paper'" in message for message in messages)
        assert any("server stopped" in message for message in messages)

    def test_tenant_adapter_prefixes_and_stamps(self):
        logger = get_logger("server", tenant="fraud")
        assert isinstance(logger, TenantLoggerAdapter)
        message, kwargs = logger.process("hello", {})
        assert message == "[fraud] hello"
        assert kwargs["extra"]["tenant"] == "fraud"

    def test_configure_is_idempotent(self):
        stream = io.StringIO()
        root = configure("WARNING", stream=stream)
        handlers_before = list(root.handlers)
        configure("DEBUG", stream=stream)
        assert list(root.handlers) == handlers_before
        get_logger("server").debug("visible now")
        assert "visible now" in stream.getvalue()
        with pytest.raises(ValueError):
            configure("NOISY")

    def test_library_is_silent_by_default(self):
        # The repro root carries a NullHandler: no "no handler" warnings
        # and nothing written unless the application opts in.
        assert any(
            isinstance(handler, logging.NullHandler)
            for handler in logging.getLogger("repro").handlers
        )
