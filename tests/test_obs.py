"""Unit and integration tests for the unified telemetry subsystem.

Covers the dependency-free ``repro.obs`` primitives — metric families,
concurrent registry mutation, nearest-rank quantiles and the bounded
reservoir, the tracer's sampling/forcing contract, and the structured
slow-query log — plus the in-process :class:`GraphDB` wiring: every layer
mirrors into one registry, the legacy stats accessors keep their exact
semantics (including reset-on-clear), and the registry counters stay
monotone across store GC.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.api import GraphDB
from repro.exceptions import ServiceOverloadedError, StoreError
from repro.obs import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    NULL_TRACE,
    Reservoir,
    SlowQueryLog,
    Telemetry,
    Trace,
    Tracer,
    new_trace_id,
    percentile,
)

pytestmark = pytest.mark.timeout(120)


# ---------------------------------------------------------------------- #
# quantiles (satellite: one shared implementation)
# ---------------------------------------------------------------------- #


class TestQuantiles:
    def test_percentile_nearest_rank(self):
        samples = [0.1, 0.2, 0.3, 0.4, 0.5]
        assert percentile(samples, 0.50) == 0.3
        assert percentile(samples, 0.95) == 0.5
        assert percentile(samples, 0.0) == 0.1
        assert percentile(samples, 1.0) == 0.5

    def test_percentile_empty(self):
        assert percentile([], 0.5) == 0.0

    def test_percentile_unsorted_input(self):
        assert percentile([5.0, 1.0, 3.0], 0.5) == 3.0

    def test_session_batch_reexports_shared_percentile(self):
        # The three historical copies collapsed onto repro.obs.quantiles;
        # the old import paths must keep answering.
        from repro.obs.quantiles import percentile as canonical
        from repro.session import percentile as via_session
        from repro.session.batch import percentile as via_batch

        assert via_session is canonical
        assert via_batch is canonical

    def test_reservoir_below_capacity_keeps_everything(self):
        reservoir = Reservoir(capacity=16)
        for value in range(10):
            reservoir.add(float(value))
        assert len(reservoir) == 10
        assert reservoir.seen == 10
        assert sorted(reservoir.samples()) == [float(v) for v in range(10)]

    def test_reservoir_bounded_and_seen_counts(self):
        reservoir = Reservoir(capacity=32, seed=7)
        for value in range(1000):
            reservoir.add(float(value))
        assert len(reservoir) == 32
        assert reservoir.seen == 1000
        assert all(0.0 <= sample < 1000.0 for sample in reservoir.samples())

    def test_reservoir_percentile_and_clear(self):
        reservoir = Reservoir(capacity=8)
        for value in [1.0, 2.0, 3.0, 4.0]:
            reservoir.add(value)
        assert reservoir.percentile(0.5) == 2.0
        reservoir.clear()
        assert len(reservoir) == 0
        assert reservoir.percentile(0.5) == 0.0


# ---------------------------------------------------------------------- #
# metrics registry
# ---------------------------------------------------------------------- #


class TestMetricsRegistry:
    def test_counter_basics(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total", "requests")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labelled_counter_children(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops_total", "ops", labelnames=("op",))
        counter.labels("query").inc()
        counter.labels("query").inc()
        counter.labels(op="ingest").inc()
        snapshot = registry.snapshot()["ops_total"]
        values = {
            value["labels"]["op"]: value["value"] for value in snapshot["values"]
        }
        assert values == {"query": 2.0, "ingest": 1.0}

    def test_registration_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("hits_total", "hits")
        second = registry.counter("hits_total", "hits")
        assert first is second

    def test_registration_conflicts_raise(self):
        registry = MetricsRegistry()
        registry.counter("thing_total", "thing")
        with pytest.raises(ValueError):
            registry.gauge("thing_total", "now a gauge")
        registry.counter("by_op_total", "t", labelnames=("op",))
        with pytest.raises(ValueError):
            registry.counter("by_op_total", "t", labelnames=("other",))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("9starts_with_digit")
        with pytest.raises(ValueError):
            registry.counter("ok_total", labelnames=("bad-label",))

    def test_gauge_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth", "queue depth")
        gauge.set(4)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 3.0

    def test_callback_gauge_evaluated_at_read(self):
        registry = MetricsRegistry()
        state = {"v": 1.0}
        registry.gauge("live", "live value", fn=lambda: state["v"])
        assert registry.get("live").value == 1.0
        state["v"] = 9.0
        assert registry.get("live").value == 9.0

    def test_callback_gauge_exception_reads_zero(self):
        registry = MetricsRegistry()

        def boom():
            raise RuntimeError("gone")

        registry.gauge("flaky", fn=boom)
        assert registry.get("flaky").value == 0.0

    def test_labelled_callback_gauge_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.gauge("bad", labelnames=("x",), fn=lambda: 1.0)

    def test_histogram_buckets_and_sum(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "latency_seconds", "latency", buckets=(0.01, 0.1, 1.0)
        )
        for value in [0.005, 0.05, 0.5, 5.0]:
            histogram.observe(value)
        snapshot = registry.snapshot()["latency_seconds"]["values"][0]
        assert snapshot["count"] == 4
        assert snapshot["sum"] == pytest.approx(5.555)
        assert snapshot["buckets"]["0.01"] == 1
        assert snapshot["buckets"]["0.1"] == 2
        assert snapshot["buckets"]["1"] == 3
        assert snapshot["buckets"]["+Inf"] == 4

    def test_histogram_rejects_explicit_inf(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(1.0, float("inf")))

    def test_snapshot_is_json_serialisable(self):
        registry = MetricsRegistry()
        registry.counter("a_total").inc()
        registry.gauge("b").set(2)
        registry.histogram("c_seconds").observe(0.2)
        json.dumps(registry.snapshot())

    def test_prometheus_text_format(self):
        registry = MetricsRegistry()
        counter = registry.counter("req_total", "requests", labelnames=("op",))
        counter.labels("query").inc(3)
        registry.histogram("lat_seconds", "latency", buckets=(0.1,)).observe(0.05)
        text = registry.to_prometheus()
        assert "# TYPE req_total counter" in text
        assert 'req_total{op="query"} 3' in text
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert "lat_seconds_count 1" in text

    def test_prometheus_extra_labels(self):
        registry = MetricsRegistry()
        registry.counter("x_total").inc()
        text = registry.to_prometheus(extra_labels={"graph": "main"})
        assert 'x_total{graph="main"} 1' in text

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_prometheus_escaping_golden(self):
        # Hostile label values and help text: backslashes, quotes, and
        # newlines must round-trip through the exposition format exactly
        # as the spec requires (help escapes \ and newline only; label
        # values additionally escape the quote).
        registry = MetricsRegistry()
        counter = registry.counter(
            "evil_total", 'a "quoted"\nmulti\\line help', labelnames=("q",)
        )
        counter.labels('va\\l"ue\nwith everything').inc()
        assert registry.to_prometheus() == (
            '# HELP evil_total a "quoted"\\nmulti\\\\line help\n'
            "# TYPE evil_total counter\n"
            'evil_total{q="va\\\\l\\"ue\\nwith everything"} 1\n'
        )


class TestRegistryConcurrency:
    """Satellite: concurrent mutation with a live snapshot reader."""

    def test_concurrent_counter_and_histogram_mutation(self):
        registry = MetricsRegistry()
        counter = registry.counter("work_total", "work", labelnames=("worker",))
        histogram = registry.histogram("work_seconds", "work", buckets=(0.5,))
        threads, increments = 8, 2000
        start = threading.Barrier(threads + 1)
        stop_reading = threading.Event()
        snapshot_errors = []

        def writer(index: int) -> None:
            child = counter.labels(f"w{index % 4}")
            start.wait()
            for _ in range(increments):
                child.inc()
                histogram.observe(0.25)

        def reader() -> None:
            # Snapshots taken mid-mutation must always be well-formed
            # (each child read atomically; totals never decrease).
            last_total = 0.0
            while not stop_reading.is_set():
                try:
                    document = registry.snapshot()
                    total = sum(
                        value["value"]
                        for value in document["work_total"]["values"]
                    )
                    if total < last_total:
                        snapshot_errors.append((last_total, total))
                    last_total = total
                except Exception as exc:  # pragma: no cover - the failure mode
                    snapshot_errors.append(exc)
                    return

        workers = [
            threading.Thread(target=writer, args=(index,)) for index in range(threads)
        ]
        observer = threading.Thread(target=reader)
        observer.start()
        for worker in workers:
            worker.start()
        start.wait()
        for worker in workers:
            worker.join()
        stop_reading.set()
        observer.join()

        assert snapshot_errors == []
        document = registry.snapshot()
        total = sum(value["value"] for value in document["work_total"]["values"])
        assert total == threads * increments
        histogram_value = document["work_seconds"]["values"][0]
        assert histogram_value["count"] == threads * increments
        assert histogram_value["buckets"]["+Inf"] == threads * increments

    def test_concurrent_registration_yields_one_family(self):
        registry = MetricsRegistry()
        families = []
        barrier = threading.Barrier(8)

        def register():
            barrier.wait()
            families.append(registry.counter("shared_total", "shared"))

        threads = [threading.Thread(target=register) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(family is families[0] for family in families)


# ---------------------------------------------------------------------- #
# tracing
# ---------------------------------------------------------------------- #


class TestTracer:
    def test_zero_sample_rate_returns_null_trace(self):
        tracer = Tracer(sample_rate=0.0)
        trace = tracer.trace("query")
        assert trace is NULL_TRACE
        assert not trace
        assert trace.to_dict() is None

    def test_full_sample_rate_returns_real_trace(self):
        tracer = Tracer(sample_rate=1.0)
        trace = tracer.trace("query")
        assert trace
        assert trace.trace_id

    def test_explicit_trace_id_forces_tracing(self):
        tracer = Tracer(sample_rate=0.0)
        trace = tracer.trace("query", trace_id="forced01")
        assert trace
        assert trace.trace_id == "forced01"

    def test_partial_sampling_is_deterministic_with_seed(self):
        tracer = Tracer(sample_rate=0.5, seed=42)
        sampled = [bool(tracer.trace("q")) for _ in range(200)]
        assert any(sampled) and not all(sampled)

    def test_null_trace_operations_are_noops(self):
        NULL_TRACE.add_span("x", 1.0)
        NULL_TRACE.annotate(a=1)
        NULL_TRACE.finish()
        with NULL_TRACE.span("y"):
            pass
        assert NULL_TRACE.trace_id is None

    def test_trace_spans_and_meta(self):
        trace = Trace("query", trace_id="t1")
        trace.add_span("plan", 0.25, engine="GM")
        trace.add_span("negative_clamped", -1.0)
        trace.annotate(status="ok")
        trace.finish()
        document = trace.to_dict()
        assert document["trace_id"] == "t1"
        assert [span["name"] for span in document["spans"]] == [
            "plan",
            "negative_clamped",
        ]
        assert document["spans"][0]["engine"] == "GM"
        assert document["spans"][1]["seconds"] == 0.0
        assert document["meta"]["status"] == "ok"
        assert document["seconds"] >= 0.0

    def test_finish_latest_wins(self):
        trace = Trace("query")
        trace.finish()
        first = trace.seconds
        trace.finish()
        assert trace.seconds >= first

    def test_span_context_manager_measures(self):
        trace = Trace("query")
        with trace.span("work"):
            pass
        assert trace.span_seconds() >= 0.0
        assert trace.to_dict()["spans"][0]["name"] == "work"

    def test_new_trace_ids_are_unique(self):
        identifiers = {new_trace_id() for _ in range(64)}
        assert len(identifiers) == 64


# ---------------------------------------------------------------------- #
# slow-query log
# ---------------------------------------------------------------------- #


class TestSlowQueryLog:
    def test_disabled_without_threshold(self):
        log = SlowQueryLog()
        assert not log.enabled
        assert log.record(10.0, query="q") is False
        assert log.recent() == []

    def test_threshold_zero_records_everything(self):
        log = SlowQueryLog(threshold_seconds=0.0)
        assert log.enabled
        assert log.record(0.001, query="fast") is True
        assert log.record(5.0, query="slow") is True
        entries = log.recent()
        assert [entry["query"] for entry in entries] == ["fast", "slow"]
        assert all("ts" in entry and "seconds" in entry for entry in entries)

    def test_threshold_filters(self):
        log = SlowQueryLog(threshold_seconds=1.0)
        assert log.record(0.5, query="fast") is False
        assert log.record(1.5, query="slow") is True
        assert len(log) == 1

    def test_capacity_ring(self):
        log = SlowQueryLog(threshold_seconds=0.0, capacity=3)
        for index in range(6):
            log.record(1.0, query=f"q{index}")
        assert [entry["query"] for entry in log.recent()] == ["q3", "q4", "q5"]
        assert log.recorded == 6

    def test_recent_limit(self):
        log = SlowQueryLog(threshold_seconds=0.0)
        for index in range(5):
            log.record(1.0, query=f"q{index}")
        assert [entry["query"] for entry in log.recent(2)] == ["q3", "q4"]

    def test_jsonl_file_sink(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        log = SlowQueryLog(threshold_seconds=0.0, path=str(path))
        log.record(2.0, query="q", trace={"trace_id": "abc"})
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1
        entry = json.loads(lines[0])
        assert entry["query"] == "q"
        assert entry["trace"]["trace_id"] == "abc"


# ---------------------------------------------------------------------- #
# telemetry context + GraphDB wiring
# ---------------------------------------------------------------------- #


class TestTelemetryWiring:
    def test_telemetry_builds_parts_from_knobs(self):
        telemetry = Telemetry(sample_rate=1.0, slow_query_seconds=0.5)
        assert telemetry.tracer.sample_rate == 1.0
        assert telemetry.slow_log.enabled
        assert telemetry.registry.names() == []

    def test_graphdb_default_telemetry_covers_every_layer(self):
        with GraphDB.from_edges(
            ["Person", "Person", "Project"], [(0, 2), (1, 2)]
        ) as db:
            db.query("node p Person\nnode j Project\nedge p -> j")
            db.ingest(labels=["Person"], edges=[(3, 2)])
            db.query("node p Person\nnode j Project\nedge p -> j")
            names = set(db.metrics())
        for family in [
            "session_cache_hits_total",
            "session_cache_misses_total",
            "store_applies_total",
            "store_pins_total",
            "store_head_version",
            "service_submitted_total",
            "service_completed_total",
            "service_queue_depth",
            "service_workers_busy",
            "engine_queries_total",
            "engine_candidates_total",
            "engine_intersections_total",
        ]:
            assert family in names, family

    def test_engine_counters_count_real_work(self):
        with GraphDB.from_edges(
            ["Person", "Person", "Project"], [(0, 2), (1, 2)]
        ) as db:
            report = db.query("node p Person\nnode j Project\nedge p -> j")
            assert report.num_matches == 2
            snapshot = db.metrics()
        mjoin = report.extra.get("mjoin")
        assert mjoin and mjoin["candidates"] > 0
        candidates = snapshot["engine_candidates_total"]["values"][0]["value"]
        assert candidates == mjoin["candidates"]

    def test_registry_counters_survive_store_gc(self):
        # Store GC clears retired sessions (which resets CacheStats); the
        # shared registry is monotone and must keep the pre-GC counts.
        with GraphDB.from_edges(["A", "B"], [(0, 1)]) as db:
            db.query("node a A\nnode b B\nedge a -> b")
            before = db.metrics()["service_completed_total"]["values"]
            for _ in range(3):
                db.ingest(labels=["B"])
                db.query("node a A\nnode b B\nedge a -> b")
            after = db.metrics()["service_completed_total"]["values"]
        total_before = sum(value["value"] for value in before)
        total_after = sum(value["value"] for value in after)
        assert total_after == total_before + 3

    def test_cache_stats_accessors_unchanged(self):
        # The legacy per-session counters keep their lifecycle (including
        # being resettable) while mirroring into the registry.
        with GraphDB.from_edges(["A", "B"], [(0, 1)]) as db:
            db.query("node a A\nnode b B\nedge a -> b")
            db.query("node a A\nnode b B\nedge a -> b")
            with db.store.pin() as snapshot:
                session_stats = snapshot.session.stats
                assert session_stats.hits  # second query reused artifacts
            assert db.stats()["completed"] == 2

    def test_stats_snapshot_document_keys_unchanged(self):
        with GraphDB.from_edges(["A", "B"], [(0, 1)]) as db:
            db.query("node a A\nnode b B\nedge a -> b")
            document = db.stats()
        for key in [
            "submitted",
            "completed",
            "failed",
            "cancelled",
            "shed_queue_full",
            "shed_deadline",
            "shed_count",
            "status_counts",
            "versions_served",
            "uptime_seconds",
            "throughput_qps",
            "latency_p50_seconds",
            "latency_p95_seconds",
            "latency_p99_seconds",
            "head_version",
            "pinned_epochs",
            "versions_retained",
            "store",
        ]:
            assert key in document, key

    def test_metrics_disabled_database(self):
        with GraphDB.from_edges(["A"], [], telemetry=None) as db:
            assert db.telemetry is None
            with pytest.raises(StoreError):
                db.metrics()
            assert db.slow_queries() == []

    def test_local_slow_query_log_records_trace(self):
        telemetry = Telemetry(slow_query_seconds=0.0)
        with GraphDB.from_edges(
            ["A", "B"], [(0, 1)], telemetry=telemetry
        ) as db:
            db.query("node a A\nnode b B\nedge a -> b", trace_id="deadbeef")
            entries = db.slow_queries()
        assert len(entries) == 1
        entry = entries[0]
        assert entry["engine"] == "GM"
        assert entry["status"] == "ok"
        assert entry["trace"]["trace_id"] == "deadbeef"
        assert {span["name"] for span in entry["trace"]["spans"]} >= {
            "queue_wait",
            "pin",
            "plan",
        }

    def test_prometheus_format_from_facade(self):
        with GraphDB.from_edges(["A", "B"], [(0, 1)]) as db:
            db.query("node a A\nnode b B\nedge a -> b")
            text = db.metrics(format="prometheus")
            with pytest.raises(ValueError):
                db.metrics(format="xml")
        assert "# TYPE service_completed_total counter" in text


class TestOverloadedErrorContext:
    """Satellite: rejection-time load context on shed errors."""

    def test_attributes_and_message(self):
        error = ServiceOverloadedError(
            "queue_full", "64 queued", queue_depth=64, workers_busy=4, workers_total=4
        )
        assert error.queue_depth == 64
        assert error.workers_busy == 4
        assert error.workers_total == 4
        assert "queue_depth=64" in str(error)
        assert "workers=4/4 busy" in str(error)

    def test_defaults_are_none(self):
        error = ServiceOverloadedError("deadline")
        assert error.queue_depth is None
        assert error.workers_busy is None
        assert error.workers_total is None
        assert "queue_depth" not in str(error)
