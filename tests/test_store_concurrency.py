"""Concurrent read/write races over the versioned store.

The MVCC correctness claim under real thread interleavings: N reader
threads run batches while a writer folds a mixed delta stream; every
batch must be *internally consistent with the version it pinned* — its
answers must equal what a cold session built from scratch on that
version's graph computes.  A torn artifact (a reader observing a
half-patched index) would break that equality.

The short variant runs in the tier-1 suite; the scaled-up variant is
marked ``slow`` (and capped by pytest-timeout where installed).
"""

import random
import threading

import pytest

from repro.dynamic import GraphDelta
from repro.graph.generators import random_labeled_graph
from repro.matching.result import Budget
from repro.query.generators import random_pattern_query
from repro.session import QuerySession
from repro.store import VersionedGraphStore

STRESS_BUDGET = Budget(
    max_matches=1_000, time_limit_seconds=10.0, max_intermediate_results=100_000
)


def _stress_queries(graph, count: int = 3, seed: int = 5):
    queries = {}
    for index in range(count):
        query = random_pattern_query(
            graph,
            3,
            seed=seed + index,
            descendant_probability=0.5,
            name=f"stress-{index}",
        )
        queries[query.name] = query
    return queries


def _mixed_delta(graph, rng: random.Random) -> GraphDelta:
    """A node-free delta: a few inserts, sometimes a removal."""
    delta = GraphDelta.for_graph(graph)
    edges = list(graph.edges())
    if edges and rng.random() < 0.5:
        source, target = edges[rng.randrange(len(edges))]
        delta.remove_edge(source, target)
    for _ in range(3):
        a, b = rng.randrange(graph.num_nodes), rng.randrange(graph.num_nodes)
        if a != b:
            delta.add_edge(a, b)
    return delta


def _run_stress(num_nodes, num_edges, num_readers, batches_per_reader, num_deltas, seed=17):
    graph = random_labeled_graph(
        num_nodes=num_nodes, num_edges=num_edges, num_labels=4, seed=seed
    )
    queries = _stress_queries(graph)
    session = QuerySession(graph, budget=STRESS_BUDGET)
    session.transitive_closure
    session.run_batch(queries, budget=STRESS_BUDGET)
    store = VersionedGraphStore(session, warm_on_publish=True)

    records = []
    records_lock = threading.Lock()
    errors = []
    start_barrier = threading.Barrier(num_readers + 1)

    def reader_loop() -> None:
        try:
            start_barrier.wait(timeout=30.0)
            for _round in range(batches_per_reader):
                with store.pin() as snapshot:
                    report = snapshot.run_batch(queries, budget=STRESS_BUDGET)
                    record = (snapshot.version, snapshot.graph, report.answers())
                with records_lock:
                    records.append(record)
        except BaseException as exc:  # surface thread failures in the test
            errors.append(exc)

    def writer_loop() -> None:
        try:
            rng = random.Random(seed + 1)
            start_barrier.wait(timeout=30.0)
            for _round in range(num_deltas):
                store.apply(_mixed_delta(store.graph, rng))
        except BaseException as exc:
            errors.append(exc)

    threads = [
        threading.Thread(target=reader_loop, name=f"stress-reader-{i}")
        for i in range(num_readers)
    ]
    threads.append(threading.Thread(target=writer_loop, name="stress-writer"))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120.0)
        assert not thread.is_alive(), f"{thread.name} wedged"
    assert not errors, errors

    # The writer folded every delta (some may have been no-ops) and every
    # reader batch completed.
    assert len(records) == num_readers * batches_per_reader

    # Every batch's answers must equal a cold rebuild of its pinned version.
    graphs = {}
    for version, graph_at_version, _answers in records:
        graphs.setdefault(version, graph_at_version)
    expected = {
        version: QuerySession(graph_at_version, budget=STRESS_BUDGET)
        .run_batch(queries, budget=STRESS_BUDGET)
        .answers()
        for version, graph_at_version in graphs.items()
    }
    for version, _graph, answers in records:
        assert answers == expected[version], (
            f"batch pinned to version {version} diverged from a cold rebuild"
        )
    store.close()
    return records, graphs


@pytest.mark.timeout(120)
def test_concurrent_readers_with_writer_short():
    """Tier-1 variant: 3 readers x 4 batches racing 6 folds."""
    records, graphs = _run_stress(
        num_nodes=80, num_edges=200, num_readers=3, batches_per_reader=4, num_deltas=6
    )
    versions = {version for version, _graph, _answers in records}
    assert versions, "no batches recorded"


@pytest.mark.slow
@pytest.mark.timeout(300)
def test_concurrent_readers_with_writer_stress():
    """Scaled-up race: more readers, more rounds, longer delta stream."""
    records, graphs = _run_stress(
        num_nodes=200,
        num_edges=600,
        num_readers=6,
        batches_per_reader=10,
        num_deltas=25,
        seed=29,
    )
    # with that much churn the readers should have spanned several versions
    versions = {version for version, _graph, _answers in records}
    assert len(versions) >= 1
