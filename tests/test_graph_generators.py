"""Tests for the synthetic graph generators and dataset registry."""

import pytest

from repro.exceptions import GraphError
from repro.graph.datasets import DATASET_SPECS, available_datasets, load_dataset
from repro.graph.generators import (
    clustered_graph,
    layered_graph,
    power_law_graph,
    random_dag,
    random_labeled_graph,
    with_label_count,
)
from repro.graph.transform import strongly_connected_components
from repro.query.classify import topological_order


class TestRandomLabeledGraph:
    def test_sizes(self):
        graph = random_labeled_graph(100, 300, 5, seed=1)
        assert graph.num_nodes == 100
        assert graph.num_edges == 300

    def test_deterministic(self):
        a = random_labeled_graph(50, 120, 4, seed=9)
        b = random_labeled_graph(50, 120, 4, seed=9)
        assert a == b

    def test_different_seeds_differ(self):
        a = random_labeled_graph(50, 120, 4, seed=1)
        b = random_labeled_graph(50, 120, 4, seed=2)
        assert a != b

    def test_no_self_loops(self):
        graph = random_labeled_graph(30, 100, 3, seed=4)
        assert all(u != v for u, v in graph.edges())

    def test_edge_count_capped_by_possible(self):
        graph = random_labeled_graph(4, 100, 2, seed=0)
        assert graph.num_edges == 12  # 4 * 3 ordered pairs

    def test_label_alphabet_size(self):
        graph = random_labeled_graph(200, 400, 7, seed=2)
        assert graph.num_labels() <= 7

    def test_invalid_parameters(self):
        with pytest.raises(GraphError):
            random_labeled_graph(0, 10, 3)
        with pytest.raises(GraphError):
            random_labeled_graph(10, -1, 3)
        with pytest.raises(GraphError):
            random_labeled_graph(10, 5, 0)


class TestRandomDag:
    def test_acyclic(self):
        graph = random_dag(80, 200, 5, seed=3)
        components = strongly_connected_components(graph)
        assert all(len(component) == 1 for component in components)

    def test_sizes_and_determinism(self):
        a = random_dag(40, 90, 4, seed=7)
        b = random_dag(40, 90, 4, seed=7)
        assert a == b
        assert a.num_nodes == 40


class TestLayeredGraph:
    def test_reachability_chains(self):
        graph = layered_graph(5, 10, 2, 4, seed=1)
        assert graph.num_nodes == 50
        # Some node in layer 0 should reach some node in the last layer.
        found = any(graph.reaches_bfs(u, v) for u in range(10) for v in range(40, 50))
        assert found

    def test_acyclic(self):
        graph = layered_graph(4, 8, 2, 3, seed=2)
        assert all(len(c) == 1 for c in strongly_connected_components(graph))

    def test_invalid(self):
        with pytest.raises(GraphError):
            layered_graph(0, 5, 2, 3)


class TestPowerLawGraph:
    def test_hub_concentration(self):
        graph = power_law_graph(300, 1500, 5, exponent=2.0, seed=1)
        in_degrees = sorted((graph.in_degree(v) for v in graph.nodes()), reverse=True)
        # The top decile of nodes should receive a disproportionate share.
        top = sum(in_degrees[:30])
        assert top > graph.num_edges * 0.3

    def test_sizes(self):
        graph = power_law_graph(100, 400, 3, seed=0)
        assert graph.num_nodes == 100
        assert graph.num_edges <= 400


class TestClusteredGraph:
    def test_sizes(self):
        graph = clustered_graph(5, 10, 3, 4, 6, seed=1)
        assert graph.num_nodes == 50

    def test_invalid(self):
        with pytest.raises(GraphError):
            clustered_graph(0, 10, 3, 4, 6)


class TestWithLabelCount:
    def test_structure_preserved(self):
        base = random_labeled_graph(60, 150, 10, seed=2)
        relabelled = with_label_count(base, 3, seed=4)
        assert set(relabelled.edges()) == set(base.edges())
        assert relabelled.num_labels() <= 3

    def test_name_suffix(self):
        base = random_labeled_graph(10, 20, 5, seed=2, name="em")
        assert "L4" in with_label_count(base, 4).name


class TestDatasetRegistry:
    def test_all_paper_datasets_registered(self):
        assert set(available_datasets()) == {"yt", "hu", "hp", "ep", "db", "em", "am", "bs", "go"}

    def test_load_dataset_shapes(self):
        for key in ("em", "hu", "am"):
            graph = load_dataset(key, scale=0.1, seed=1)
            spec = DATASET_SPECS[key]
            assert graph.name == key
            assert graph.num_labels() <= spec.paper_labels
            assert graph.num_nodes > 0

    def test_label_alphabet_matches_spec_order(self):
        # Datasets with few labels stay few; label-rich datasets stay rich.
        am = load_dataset("am", scale=0.2, seed=1)
        hp = load_dataset("hp", scale=0.2, seed=1)
        assert am.num_labels() <= 3
        assert hp.num_labels() > 50

    def test_scale_changes_size(self):
        small = load_dataset("ep", scale=0.1, seed=1)
        large = load_dataset("ep", scale=0.3, seed=1)
        assert large.num_nodes > small.num_nodes

    def test_deterministic(self):
        assert load_dataset("em", scale=0.1, seed=4) == load_dataset("em", scale=0.1, seed=4)

    def test_unknown_dataset(self):
        with pytest.raises(GraphError):
            load_dataset("unknown")

    def test_invalid_scale(self):
        with pytest.raises(GraphError):
            load_dataset("em", scale=0.0)

    def test_spec_build(self):
        spec = DATASET_SPECS["yt"]
        graph = spec.build(scale=0.1, seed=2)
        assert graph.name == "yt"
