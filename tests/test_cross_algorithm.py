"""Integration tests: every matcher must compute the same query answers.

The brute-force enumerator is the oracle.  Random graphs and random queries
(hybrid, child-only and descendant-only) are evaluated with GM (all variants
and orderings), JM, TM and — for child-only queries — the four engines, and
all answers are compared.  This is the library's end-to-end correctness net.
"""

import pytest

from repro.baselines.bruteforce import bruteforce_homomorphisms
from repro.baselines.jm import JMMatcher
from repro.baselines.tm import TMMatcher
from repro.engines.binary_join import BinaryJoinEngine
from repro.engines.relational import RelationalEngine
from repro.engines.treedecomp import TreeDecompEngine
from repro.engines.wcoj import WCOJEngine
from repro.graph.generators import layered_graph, random_dag, random_labeled_graph
from repro.matching.gm import GMVariant, GraphMatcher
from repro.matching.ordering import OrderingMethod
from repro.matching.result import Budget
from repro.query.generators import random_pattern_query, to_child_only, to_descendant_only
from repro.simulation.context import MatchContext

UNLIMITED = Budget(max_matches=None, time_limit_seconds=None, max_intermediate_results=None)


def _graphs():
    return [
        random_labeled_graph(40, 140, 3, seed=1, name="rand40"),
        random_labeled_graph(50, 120, 4, seed=2, name="rand50"),
        random_dag(45, 130, 3, seed=3, name="dag45"),
        layered_graph(4, 12, 2, 3, seed=4, name="layer48"),
    ]


GRAPHS = _graphs()


@pytest.mark.parametrize("graph", GRAPHS, ids=lambda g: g.name)
@pytest.mark.parametrize("kind", ["H", "C", "D"])
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_gm_jm_tm_match_bruteforce(graph, kind, seed):
    context = MatchContext(graph, reachability_kind="bfl")
    query = random_pattern_query(graph, 4, seed=seed * 7 + 1)
    if kind == "C":
        query = to_child_only(query, name=query.name)
    elif kind == "D":
        query = to_descendant_only(query, name=query.name)

    expected = frozenset(bruteforce_homomorphisms(graph, query, reachability=context.reachability))
    gm = GraphMatcher(graph, context=context, budget=UNLIMITED).match(query)
    jm = JMMatcher(graph, context=context, budget=UNLIMITED).match(query)
    tm = TMMatcher(graph, context=context, budget=UNLIMITED).match(query)
    assert gm.occurrence_set() == expected
    assert jm.occurrence_set() == expected
    assert tm.occurrence_set() == expected


@pytest.mark.parametrize("graph", GRAPHS[:2], ids=lambda g: g.name)
@pytest.mark.parametrize("variant", list(GMVariant))
def test_gm_variants_match_bruteforce(graph, variant):
    context = MatchContext(graph)
    query = random_pattern_query(graph, 5, seed=11)
    expected = frozenset(bruteforce_homomorphisms(graph, query, reachability=context.reachability))
    matcher = GraphMatcher(graph, context=context, variant=variant, budget=UNLIMITED)
    assert matcher.match(query).occurrence_set() == expected


@pytest.mark.parametrize("graph", GRAPHS[:2], ids=lambda g: g.name)
@pytest.mark.parametrize("ordering", list(OrderingMethod))
def test_gm_orderings_match_bruteforce(graph, ordering):
    context = MatchContext(graph)
    query = random_pattern_query(graph, 5, seed=13)
    expected = frozenset(bruteforce_homomorphisms(graph, query, reachability=context.reachability))
    matcher = GraphMatcher(graph, context=context, ordering=ordering, budget=UNLIMITED)
    assert matcher.match(query).occurrence_set() == expected


@pytest.mark.parametrize("graph", GRAPHS[:2], ids=lambda g: g.name)
@pytest.mark.parametrize("seed", [4, 5])
def test_engines_match_bruteforce_on_child_queries(graph, seed):
    query = to_child_only(random_pattern_query(graph, 4, seed=seed))
    expected = frozenset(bruteforce_homomorphisms(graph, query))
    for engine_class in (BinaryJoinEngine, RelationalEngine, WCOJEngine, TreeDecompEngine):
        result = engine_class(graph, budget=UNLIMITED).match(query)
        assert result.report.occurrence_set() == expected, engine_class.__name__


@pytest.mark.parametrize("graph", GRAPHS, ids=lambda g: g.name)
def test_reachability_index_choice_does_not_change_answers(graph):
    query = random_pattern_query(graph, 4, seed=21, descendant_probability=1.0)
    answers = []
    for kind in ("bfl", "tc", "interval", "bfs"):
        context = MatchContext(graph, reachability_kind=kind)
        report = GraphMatcher(graph, context=context, budget=UNLIMITED).match(query)
        answers.append(report.occurrence_set())
    assert all(answer == answers[0] for answer in answers)


def test_larger_hybrid_query_consistency():
    """A 7-node hybrid query on a denser graph: GM vs JM vs TM (no oracle)."""
    graph = random_labeled_graph(80, 400, 4, seed=9, name="dense80")
    context = MatchContext(graph)
    query = random_pattern_query(graph, 7, seed=17)
    gm = GraphMatcher(graph, context=context, budget=UNLIMITED).match(query)
    jm = JMMatcher(graph, context=context, budget=UNLIMITED).match(query)
    tm = TMMatcher(graph, context=context, budget=UNLIMITED).match(query)
    assert gm.occurrence_set() == jm.occurrence_set() == tm.occurrence_set()
