"""End-to-end tests for the wire-protocol graph server.

A real :class:`GraphServer` on a loopback socket, exercised through the
synchronous :class:`GraphClient`:

* facade parity — every remote read answers exactly what the in-process
  session answers;
* the multi-tenant catalog lifecycle (create / list / drop, isolation
  between concurrent clients on distinct tenants);
* pipelined streaming — first page before query completion, credit-based
  backpressure, cancel/disconnect releasing the server-side pin (asserted
  through the store gauges);
* the failure surface — shed/deadline/unknown-graph/parse error mapping,
  malformed and truncated frames, unknown ops.
"""

from __future__ import annotations

import socket
import struct
import threading
import time

import pytest

from fixtures_paper import PAPER_ANSWER, build_paper_graph, build_paper_query
from repro.api import GraphDB
from repro.client import GraphClient
from repro.engines.base import Engine
from repro.exceptions import (
    CatalogError,
    ProtocolError,
    QueryCancelled,
    QueryParseError,
    ServiceOverloadedError,
    StoreError,
    UnknownGraphError,
)
from repro.matching.result import Budget, MatchStatus
from repro.query.pattern import EdgeType, PatternQuery
from repro.server import GraphCatalog, GraphServer
from repro.server.protocol import encode_frame, read_frame_sync
from repro.service import ServiceConfig
from repro.session import QuerySession

pytestmark = pytest.mark.timeout(120)

PAPER_DSL = (
    "node a A\nnode b B\nnode c C\n"
    "edge a -> b\nedge a -> c\nedge b => c"
)


def simple_query() -> PatternQuery:
    return PatternQuery(labels=["A", "B"], edges=[(0, 1, EdgeType.CHILD)], name="ab")


class SlowEngine(Engine):
    """Emits one occurrence every ``delay`` seconds, cancel-aware."""

    name = "SLOW-WIRE"
    total = 60
    delay = 0.01

    def _iter_evaluate(self, graph, query, budget):
        event = budget.cancel_event
        for index in range(self.total):
            if event is not None and event.is_set():
                raise QueryCancelled()
            time.sleep(self.delay)
            yield tuple(index for _ in query.nodes())


class FirehoseEngine(Engine):
    """Emits occurrences as fast as possible, counting every production."""

    name = "FIREHOSE-WIRE"
    total = 10_000
    produced = 0  # class-level: reset per test

    def _iter_evaluate(self, graph, query, budget):
        for index in range(self.total):
            type(self).produced += 1
            yield tuple(index for _ in query.nodes())


@pytest.fixture(autouse=True)
def registered_engines():
    for cls in (SlowEngine, FirehoseEngine):
        QuerySession.register_engine(cls.name, cls)
    yield
    for cls in (SlowEngine, FirehoseEngine):
        QuerySession.unregister_engine(cls.name)


@pytest.fixture
def server():
    with GraphServer() as srv:
        yield srv


@pytest.fixture
def client(server):
    graph = build_paper_graph()
    with GraphClient(*server.address, timeout=60.0) as cli:
        cli.create_graph(
            "paper", labels=graph.labels, edges=graph.edges(), switch=True
        )
        yield cli


def wait_for(predicate, timeout=15.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


# ---------------------------------------------------------------------- #
# facade parity
# ---------------------------------------------------------------------- #


class TestFacadeParity:
    def test_query_matches_in_process(self, client):
        local = QuerySession(build_paper_graph()).query(build_paper_query())
        remote = client.query(build_paper_query())
        assert remote.occurrence_set() == local.occurrence_set() == set(PAPER_ANSWER)
        assert remote.status is MatchStatus.OK
        assert remote.num_matches == local.num_matches

    def test_dsl_text_query(self, client):
        remote = client.query(PAPER_DSL, name="paper-dsl")
        assert remote.occurrence_set() == set(PAPER_ANSWER)
        assert remote.query_name == "paper-dsl"

    def test_count_and_histogram(self, client):
        session = QuerySession(build_paper_graph())
        assert client.count(build_paper_query()) == session.count(build_paper_query())
        assert client.histogram(build_paper_query()) == session.histogram(
            build_paper_query()
        )
        assert client.histogram(build_paper_query(), node=0) == session.histogram(
            build_paper_query(), node=0
        )

    def test_engine_selection(self, client):
        # GM and JM share exact hybrid semantics; the comparator engines
        # (GF/EH) answer the closure-expanded rewriting, so remote must
        # simply agree with the in-process run of the same engine.
        session = QuerySession(build_paper_graph())
        for engine in ("GM", "JM", "GF", "EH"):
            local = session.query(build_paper_query(), engine=engine)
            remote = client.query(build_paper_query(), engine=engine)
            assert remote.occurrence_set() == local.occurrence_set(), engine
        assert client.query(
            build_paper_query(), engine="JM"
        ).occurrence_set() == set(PAPER_ANSWER)

    def test_budget_respected_remotely(self, client):
        report = client.query(build_paper_query(), budget=Budget(max_matches=2))
        assert report.num_matches == 2
        assert report.status is MatchStatus.MATCH_LIMIT

    def test_run_batch_matches_in_process(self, client):
        session = QuerySession(build_paper_graph())
        local = session.run_batch({"q0": build_paper_query(), "q1": simple_query()})
        remote = client.run_batch({"q0": build_paper_query(), "q1": simple_query()})
        assert remote.version == 0
        assert remote.num_queries == local.num_queries == 2
        by_name = {outcome.name: outcome for outcome in remote.outcomes}
        for outcome in local.outcomes:
            assert by_name[outcome.name].occurrence_set() == outcome.occurrence_set()
            assert by_name[outcome.name].status == outcome.status

    def test_stream_pages_equal_query_occurrences(self, client):
        remote_pages = []
        with client.stream(build_paper_query(), page_size=2) as stream:
            for page in stream.pages(timeout=30.0):
                remote_pages.append(page)
            report = stream.report(timeout=30.0)
        occurrences = [occ for page in remote_pages for occ in page]
        assert set(occurrences) == set(PAPER_ANSWER)
        assert all(len(page) <= 2 for page in remote_pages)
        assert report.num_matches == len(PAPER_ANSWER)
        assert report.status is MatchStatus.OK

    def test_info_and_stats(self, client):
        info = client.info()
        graph = build_paper_graph()
        assert info["num_nodes"] == graph.num_nodes
        assert info["num_edges"] == graph.num_edges
        assert info["head_version"] == 0
        stats = client.stats()
        assert stats["completed"] >= 0
        assert "store" in stats

    def test_save(self, client, tmp_path):
        from repro.graph.io import load_graph_json

        path = client.save(str(tmp_path / "paper.json"))
        restored = load_graph_json(path)
        assert restored.num_nodes == build_paper_graph().num_nodes


# ---------------------------------------------------------------------- #
# writes + version pinning
# ---------------------------------------------------------------------- #


class TestWrites:
    def test_ingest_publishes_new_version(self, client):
        before = client.count(simple_query())
        base = client.num_nodes
        report = client.ingest(labels=["A", "B"], edges=[(base, base + 1)])
        assert report.new_version == 1
        assert client.head_version == 1
        assert client.count(simple_query()) == before + 1

    def test_apply_prepared_delta(self, client):
        delta = client.delta()
        node = delta.add_node("B")
        delta.add_edge(0, node)
        report = client.apply(delta)
        assert report.new_version == 1

    def test_apply_async_roundtrip(self, client):
        delta = client.delta()
        delta.add_edge(0, client.num_nodes - 1)
        handle = client.apply_async(delta)
        report = handle.result(timeout=30.0)
        assert report.new_version >= report.old_version

    def test_pin_isolates_from_writes(self, client):
        with client.pin() as snapshot:
            assert snapshot.version == 0
            before = snapshot.count(simple_query())
            base = client.num_nodes
            client.ingest(labels=["A", "B"], edges=[(base, base + 1)])
            assert client.head_version == 1
            # The pinned snapshot still answers from version 0 ...
            assert snapshot.count(simple_query()) == before
            batch = snapshot.run_batch([simple_query()])
            assert batch.version == 0
            # ... while unpinned reads see the new head.
            assert client.count(simple_query()) == before + 1

    def test_release_makes_pin_unusable(self, client):
        snapshot = client.pin()
        snapshot.release()
        with pytest.raises(StoreError):
            client.count(simple_query(), pin=snapshot.token)


# ---------------------------------------------------------------------- #
# the multi-tenant catalog
# ---------------------------------------------------------------------- #


class TestCatalog:
    def test_create_list_drop(self, client):
        client.create_graph("second", labels=["X", "Y"], edges=[(0, 1)], switch=False)
        names = {info["name"] for info in client.graphs()}
        assert names == {"paper", "second"}
        client.drop_graph("second")
        assert {info["name"] for info in client.graphs()} == {"paper"}

    def test_duplicate_create_raises(self, client):
        with pytest.raises(CatalogError):
            client.create_graph("paper", labels=["A"])

    def test_exist_ok(self, client):
        info = client.create_graph("paper", exist_ok=True)
        assert info["name"] == "paper"

    def test_unknown_graph_error(self, client):
        with pytest.raises(UnknownGraphError):
            client.query(simple_query(), graph="nope")
        with pytest.raises(UnknownGraphError):
            client.drop_graph("nope")

    def test_dropped_tenant_queries_fail(self, client):
        client.create_graph("temp", labels=["A", "B"], edges=[(0, 1)], switch=False)
        assert client.count(simple_query(), graph="temp") == 1
        client.drop_graph("temp")
        with pytest.raises(UnknownGraphError):
            client.count(simple_query(), graph="temp")

    def test_attached_database_is_served(self, server):
        db = GraphDB.open(build_paper_graph())
        try:
            server.catalog.attach("attached", db)
            with GraphClient(*server.address, graph="attached") as cli:
                assert cli.query(build_paper_query()).occurrence_set() == set(
                    PAPER_ANSWER
                )
        finally:
            db.close()

    def test_concurrent_clients_on_distinct_tenants(self, server):
        # Each client creates its own tenant and hammers it; tenants must
        # never observe each other's data or interfere.
        errors = []
        rounds = 10

        def worker(index: int) -> None:
            try:
                width = 2 + index
                labels = ["A"] + ["B"] * width
                edges = [(0, b) for b in range(1, width + 1)]
                with GraphClient(*server.address) as cli:
                    cli.create_graph(f"tenant-{index}", labels=labels, edges=edges)
                    for _ in range(rounds):
                        assert cli.count(simple_query()) == width
                        histogram = cli.histogram(simple_query())
                        assert histogram == {"A": 1, "B": width}
                    report = cli.ingest(labels=["B"], edges=[(0, width + 1)])
                    assert report.new_version == 1
                    assert cli.count(simple_query()) == width + 1
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append((index, exc))

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not errors, errors


# ---------------------------------------------------------------------- #
# pipelined streaming over the wire
# ---------------------------------------------------------------------- #


class TestWireStreaming:
    def test_first_page_arrives_before_query_completes(self, client):
        with client.stream(simple_query(), engine="SLOW-WIRE", page_size=4) as stream:
            pages = stream.pages(timeout=30.0)
            first = next(pages)
            assert len(first) == 4
            # 60 occurrences at 10ms each: the query is still running.
            stats = client.stats()
            assert stats["pinned_epochs"] >= 1
            remaining = sum(len(page) for page in pages)
            assert 4 + remaining == SlowEngine.total

    def test_close_mid_stream_cancels_and_releases_pin(self, client):
        stream = client.stream(simple_query(), engine="SLOW-WIRE", page_size=2)
        pages = stream.pages(timeout=30.0)
        next(pages)
        stream.close()
        assert wait_for(lambda: client.stats()["pinned_epochs"] == 0), (
            "server kept the snapshot pinned after the client cancelled"
        )
        # The worker unwinds cooperatively; wait for its terminal transition.
        assert wait_for(
            lambda: (
                lambda stats: stats["cancelled"] >= 1 or stats["completed"] >= 1
            )(client.stats())
        )

    def test_abandoned_stream_iterator_cancels_remotely(self, client):
        for page in client.stream(simple_query(), engine="SLOW-WIRE", page_size=2).pages(
            timeout=30.0
        ):
            break  # walk away mid-iteration; GC closes the stream
        import gc

        gc.collect()
        assert wait_for(lambda: client.stats()["pinned_epochs"] == 0)

    def test_client_disconnect_mid_stream_releases_server_resources(self, server, client):
        victim = GraphClient(*server.address, graph="paper")
        stream = victim.stream(simple_query(), engine="SLOW-WIRE", page_size=2)
        next(stream.pages(timeout=30.0))
        victim._sock.close()  # abrupt disconnect: no cancel frame, no goodbye
        assert wait_for(lambda: client.stats()["pinned_epochs"] == 0), (
            "a dropped connection leaked its snapshot pin"
        )

    def test_client_disconnect_with_unconsumed_stream(self, server, client):
        victim = GraphClient(*server.address, graph="paper")
        victim.stream(simple_query(), engine="SLOW-WIRE", page_size=2)
        victim._sock.close()  # never consumed a single page
        assert wait_for(lambda: client.stats()["pinned_epochs"] == 0)

    def test_backpressure_bounds_unconsumed_production(self, client):
        FirehoseEngine.produced = 0
        stream = client.stream(simple_query(), engine="FIREHOSE-WIRE", page_size=8)
        try:
            time.sleep(0.5)  # grant nothing: the pump must stall on credits
            produced = FirehoseEngine.produced
            assert produced < FirehoseEngine.total, (
                "producer ran to completion against an unread stream"
            )
            # Bound: service page buffer + credit window + one page in flight.
            assert produced <= 8 * (4 + 1 + 4 + 2), (
                f"{produced} occurrences produced against a stalled consumer"
            )
        finally:
            stream.close()

    def test_streamed_prefix_respects_match_cap(self, client):
        stream = client.stream(
            build_paper_query(), budget=Budget(max_matches=2), page_size=1
        )
        occurrences = list(stream)
        assert len(occurrences) == 2
        report = stream.report(timeout=30.0)
        assert report.status is MatchStatus.MATCH_LIMIT

    def test_pinned_stream(self, client):
        with client.pin() as snapshot:
            base = client.num_nodes
            client.ingest(labels=["A", "B"], edges=[(base, base + 1)])
            with snapshot.stream(simple_query(), page_size=8) as stream:
                assert stream.version == 0
                count = sum(len(page) for page in stream.pages(timeout=30.0))
            # The head moved while the pinned stream answered from v0.
            assert client.count(simple_query()) == count + 1


# ---------------------------------------------------------------------- #
# the failure surface
# ---------------------------------------------------------------------- #


class TestFailureSurface:
    def test_queue_full_shed_maps_to_overloaded(self):
        config = ServiceConfig(workers=1, queue_limit=0)
        with GraphServer(service_config=config) as srv:
            with GraphClient(*srv.address) as cli:
                cli.create_graph("tiny", labels=["A", "B"], edges=[(0, 1)])
                with pytest.raises(ServiceOverloadedError) as excinfo:
                    cli.query(simple_query())
                assert excinfo.value.reason == "queue_full"

    def test_deadline_shed_maps_to_overloaded(self, client):
        with pytest.raises(ServiceOverloadedError) as excinfo:
            client.query(simple_query(), deadline_seconds=-0.001)
        assert excinfo.value.reason == "deadline"

    def test_shed_stream_raises_through_pages(self):
        config = ServiceConfig(workers=1, queue_limit=0)
        with GraphServer(service_config=config) as srv:
            with GraphClient(*srv.address) as cli:
                cli.create_graph("tiny", labels=["A", "B"], edges=[(0, 1)])
                with pytest.raises(ServiceOverloadedError):
                    cli.stream(simple_query())
                assert cli.stats()["pinned_epochs"] == 0

    def test_parse_error_maps(self, client):
        with pytest.raises(QueryParseError):
            client.query("this is not the DSL")

    def test_client_timeout_bounds_the_server_side_wait(self, client):
        # The per-call timeout travels in the frame: the *server* gives up
        # waiting on the ticket and answers a mapped TimeoutError (instead
        # of pinning an executor thread while the client walks away).
        started = time.monotonic()
        with pytest.raises(TimeoutError):
            client.query(simple_query(), engine="SLOW-WIRE", timeout=0.05)
        assert time.monotonic() - started < 10.0
        assert client.ping()  # connection stays usable afterwards

    def test_unknown_engine_is_an_error_not_a_hang(self, client):
        with pytest.raises(Exception):
            client.query(simple_query(), engine="NO-SUCH-ENGINE")
        assert client.ping()  # connection survives op-level failures

    def test_unknown_op_keeps_connection_alive(self, server, client):
        raw = socket.create_connection(server.address, timeout=10.0)
        try:
            raw.sendall(encode_frame({"id": 1, "op": "telepathy"}))
            frame = read_frame_sync(raw)
            assert frame["ok"] is False
            assert frame["error"]["code"] == "protocol"
            raw.sendall(encode_frame({"id": 2, "op": "ping"}))
            frame = read_frame_sync(raw)
            assert frame["ok"] is True
        finally:
            raw.close()

    def test_request_without_id_answers_error(self, server):
        raw = socket.create_connection(server.address, timeout=10.0)
        try:
            raw.sendall(encode_frame({"op": "ping"}))
            frame = read_frame_sync(raw)
            assert frame["ok"] is False
            assert frame["error"]["code"] == "protocol"
        finally:
            raw.close()

    def test_malformed_frame_closes_connection_server_survives(self, server, client):
        raw = socket.create_connection(server.address, timeout=10.0)
        try:
            body = b"this is not json at all {{{"
            raw.sendall(struct.pack(">I", len(body)) + body)
            frame = read_frame_sync(raw)
            assert frame["ok"] is False
            assert frame["error"]["code"] == "protocol"
            # The server closes a connection with broken framing ...
            assert read_frame_sync(raw) is None
        finally:
            raw.close()
        # ... but keeps serving everyone else.
        assert client.ping()

    def test_truncated_frame_then_disconnect_is_harmless(self, server, client):
        raw = socket.create_connection(server.address, timeout=10.0)
        raw.sendall(struct.pack(">I", 1000) + b"only a little")
        raw.close()
        time.sleep(0.1)
        assert client.ping()

    def test_oversized_length_prefix_rejected(self, server, client):
        from repro.server.protocol import MAX_FRAME_BYTES

        raw = socket.create_connection(server.address, timeout=10.0)
        try:
            raw.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1) + b"x" * 64)
            frame = read_frame_sync(raw)
            assert frame["ok"] is False
            assert frame["error"]["code"] == "protocol"
        finally:
            raw.close()
        assert client.ping()

    def test_query_needs_a_graph(self, server):
        with GraphClient(*server.address) as cli:  # no default tenant
            with pytest.raises(StoreError):
                cli.query(simple_query())

    def test_unknown_pin_token(self, client):
        with pytest.raises(StoreError):
            client.count(simple_query(), pin="p999")

    def test_pin_is_per_graph(self, client):
        client.create_graph("other", labels=["A", "B"], edges=[(0, 1)], switch=False)
        snapshot = client.pin()
        try:
            with pytest.raises(StoreError):
                client.count(simple_query(), graph="other", pin=snapshot.token)
        finally:
            snapshot.release()


# ---------------------------------------------------------------------- #
# catalog unit behaviour (no socket)
# ---------------------------------------------------------------------- #


class TestGraphCatalog:
    def test_create_get_drop(self):
        with GraphCatalog() as catalog:
            catalog.create("g", labels=["A", "B"], edges=[(0, 1)])
            assert "g" in catalog
            assert catalog.get("g").num_nodes == 2
            catalog.drop("g")
            assert "g" not in catalog
            with pytest.raises(UnknownGraphError):
                catalog.get("g")

    def test_bad_names(self):
        with GraphCatalog() as catalog:
            with pytest.raises(CatalogError):
                catalog.create("")
            with pytest.raises(CatalogError):
                catalog.create(42)  # type: ignore[arg-type]

    def test_attach_keeps_ownership(self):
        db = GraphDB.open(build_paper_graph())
        try:
            with GraphCatalog() as catalog:
                catalog.attach("mine", db)
            # Catalog closed; the attached database must still serve.
            assert db.query(build_paper_query()).num_matches == len(PAPER_ANSWER)
        finally:
            db.close()

    def test_close_closes_owned(self):
        catalog = GraphCatalog()
        database = catalog.create("g", labels=["A", "B"], edges=[(0, 1)])
        catalog.close()
        with pytest.raises(StoreError):
            database.query(simple_query())
