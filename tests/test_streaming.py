"""Tests for the incremental match-iterator protocol.

Covers the new execution primitives across the matcher layer:

* ``MatchStream`` mechanics — running counters, terminal statuses,
  ``report()`` equivalence with the eager path, counting drains;
* true laziness of GM (MJoin) and the WCOJ engine — the work done to
  produce the first ``k`` matches is measured (candidate-expansion /
  adjacency-read counters), not guessed from wall clocks;
* early termination — closing a generator mid-search stops it;
* the deprecation shim for legacy blocking ``_evaluate``-only engines.
"""

from __future__ import annotations

import itertools

import pytest

from fixtures_paper import (
    PAPER_ANSWER,
    build_paper_graph,
    build_paper_query,
)
from repro.engines import BinaryJoinEngine, RelationalEngine, TreeDecompEngine, WCOJEngine
from repro.engines.base import Engine
from repro.graph.digraph import DataGraph
from repro.matching.gm import GraphMatcher
from repro.matching.result import Budget, MatchStatus
from repro.matching.stream import MatchStream
from repro.query.pattern import EdgeType, PatternQuery
from repro.session import QuerySession

ENGINE_CLASSES = [BinaryJoinEngine, RelationalEngine, WCOJEngine, TreeDecompEngine]


def fanout_graph(width: int = 12) -> DataGraph:
    """One A-node pointing at ``width`` B nodes, each pointing at ``width`` Cs.

    The A->B->C path query has ``width**2`` matches — enough that lazy and
    materialised enumeration are easy to tell apart by work counters.
    """
    labels = ["A"] + ["B"] * width + ["C"] * width
    edges = []
    for b in range(1, width + 1):
        edges.append((0, b))
        for c in range(width + 1, 2 * width + 1):
            edges.append((b, c))
    return DataGraph(labels, edges, name="fanout")


def path_query() -> PatternQuery:
    return PatternQuery(
        labels=["A", "B", "C"],
        edges=[(0, 1, EdgeType.CHILD), (1, 2, EdgeType.CHILD)],
        name="path-abc",
    )


# ---------------------------------------------------------------------- #
# MatchStream mechanics
# ---------------------------------------------------------------------- #


class TestMatchStream:
    def test_counters_and_status_lifecycle(self):
        graph = build_paper_graph()
        matcher = GraphMatcher(graph)
        stream = matcher.match_stream(build_paper_query())
        assert stream.status is None and not stream.finished
        first = next(stream)
        assert first in PAPER_ANSWER
        assert stream.num_yielded == 1
        assert stream.first_match_seconds is not None
        rest = list(stream)
        assert stream.finished and stream.status is MatchStatus.OK
        assert {first, *rest} == set(PAPER_ANSWER)

    def test_report_equals_eager_match(self):
        graph = build_paper_graph()
        matcher = GraphMatcher(graph)
        eager = matcher.match(build_paper_query())
        streamed = matcher.match_stream(build_paper_query()).report()
        assert streamed.occurrence_set() == eager.occurrence_set()
        assert streamed.status == eager.status
        assert streamed.num_matches == eager.num_matches
        assert streamed.extra["rig_size"] == eager.extra["rig_size"]

    def test_counting_drain_keeps_no_occurrences(self):
        graph = build_paper_graph()
        matcher = GraphMatcher(graph)
        stream = matcher.match_stream(build_paper_query(), keep_occurrences=False)
        report = stream.report()
        assert report.num_matches == len(PAPER_ANSWER)
        assert report.occurrences == []

    def test_close_mid_stream_reports_cancelled_partial(self):
        matcher = GraphMatcher(fanout_graph())
        stream = matcher.match_stream(path_query())
        next(stream)
        stream.close()
        report = stream.report(drain=False)
        assert report.status is MatchStatus.CANCELLED
        assert report.num_matches == 1

    def test_match_limit_status(self):
        matcher = GraphMatcher(fanout_graph())
        stream = matcher.match_stream(path_query(), budget=Budget(max_matches=5))
        assert len(list(stream)) == 5
        assert stream.status is MatchStatus.MATCH_LIMIT

    def test_timeout_becomes_status_not_exception(self):
        # width=50 gives 2500 matches: the amortised budget clock (one real
        # check per 2048 calls) is guaranteed to fire mid-enumeration.
        matcher = GraphMatcher(fanout_graph(width=50))
        budget = Budget(max_matches=None, time_limit_seconds=0.0)
        stream = matcher.match_stream(query=path_query(), budget=budget)
        drained = list(stream)
        assert stream.status is MatchStatus.TIMEOUT
        assert len(drained) < 2500  # stopped before full enumeration

    def test_from_report_replays_blocking_matchers(self):
        # TM and ISO have no streaming path and replay their eager result.
        graph = build_paper_graph()
        session = QuerySession(graph)
        stream = session.stream(build_paper_query(), engine="TM")
        occurrences = set(stream)
        assert occurrences == set(PAPER_ANSWER)
        report = stream.report()
        assert report.status is MatchStatus.OK
        assert report.extra.get("pre_materialized") is True or report.num_matches == 4


# ---------------------------------------------------------------------- #
# JM baseline streaming (the final hash join emits as it probes)
# ---------------------------------------------------------------------- #


class TestJMStreaming:
    def test_stream_no_longer_replays_a_finished_report(self):
        session = QuerySession(build_paper_graph())
        stream = session.stream(build_paper_query(), engine="JM")
        report = stream.report()
        assert set(report.occurrences) == set(PAPER_ANSWER)
        assert report.status is MatchStatus.OK
        assert "pre_materialized" not in report.extra
        assert report.extra.get("streamed") is True
        assert "plans_considered" in report.extra

    def test_stream_equals_eager(self):
        graph = fanout_graph(width=8)
        session = QuerySession(graph)
        eager = session.query(path_query(), engine="JM")
        streamed = session.stream(path_query(), engine="JM").report()
        assert streamed.occurrence_set() == eager.occurrence_set()
        assert streamed.num_matches == eager.num_matches
        assert streamed.status is eager.status

    def test_final_join_emits_before_all_rows_are_probed(self):
        # The final hash join must yield per probe: with a match cap of k,
        # only a prefix of the probe loop runs, and the enumeration order
        # matches the eager execution's projection order exactly.
        graph = fanout_graph(width=10)
        session = QuerySession(graph)
        full = session.query(path_query(), engine="JM").occurrences
        for k in (1, 3, 17):
            stream = session.stream(
                path_query(), engine="JM", budget=Budget(max_matches=k)
            )
            prefix = list(stream)
            assert prefix == full[:k]
            assert stream.status is MatchStatus.MATCH_LIMIT

    def test_close_stops_the_probe_loop(self):
        graph = fanout_graph(width=10)
        session = QuerySession(graph)
        stream = session.stream(path_query(), engine="JM")
        first = next(stream)
        stream.close()
        report = stream.report(drain=False)
        assert report.status is MatchStatus.CANCELLED
        assert report.occurrences == [first]

    def test_single_node_query_streams(self):
        graph = fanout_graph(width=4)
        session = QuerySession(graph)
        single = PatternQuery(labels=["B"], edges=[], name="b-only")
        assert sorted(session.stream(single, engine="JM")) == sorted(
            session.query(single, engine="JM").occurrences
        )

    def test_single_edge_query_streams(self):
        graph = fanout_graph(width=4)
        session = QuerySession(graph)
        pair = PatternQuery(
            labels=["A", "B"], edges=[(0, 1, EdgeType.CHILD)], name="ab"
        )
        eager = session.query(pair, engine="JM")
        assert list(session.stream(pair, engine="JM")) == eager.occurrences

    def test_descendant_edges_stream(self):
        session = QuerySession(build_paper_graph())
        query = build_paper_query()
        hybrid_eager = session.query(query, engine="JM")
        assert set(session.stream(query, engine="JM")) == hybrid_eager.occurrence_set()

    def test_timeout_becomes_terminal_status(self):
        graph = fanout_graph(width=50)
        session = QuerySession(graph)
        budget = Budget(max_matches=None, time_limit_seconds=0.0)
        stream = session.stream(path_query(), engine="JM", budget=budget)
        drained = list(stream)
        assert stream.status is MatchStatus.TIMEOUT
        assert len(drained) < 2500

    def test_count_uses_the_streaming_path(self):
        graph = fanout_graph(width=6)
        session = QuerySession(graph)
        assert session.count(path_query(), engine="JM") == 36


# ---------------------------------------------------------------------- #
# engine iter_matches protocol
# ---------------------------------------------------------------------- #


class TestEngineIterMatches:
    @pytest.mark.parametrize("engine_class", ENGINE_CLASSES)
    def test_stream_equals_eager(self, engine_class):
        graph = build_paper_graph()
        engine = engine_class(graph)
        eager = engine.match(build_paper_query())
        streamed = engine.match_stream(build_paper_query()).report()
        assert streamed.occurrence_set() == eager.report.occurrence_set()
        assert streamed.status == eager.report.status

    @pytest.mark.parametrize("engine_class", ENGINE_CLASSES)
    def test_count_short_circuits_on_match_cap(self, engine_class):
        engine = engine_class(fanout_graph())
        assert engine.count(path_query(), budget=Budget(max_matches=7)) == 7
        assert engine.count(path_query(), budget=Budget(max_matches=None)) == 144

    @pytest.mark.parametrize("engine_class", ENGINE_CLASSES)
    def test_generator_close_stops_search(self, engine_class):
        engine = engine_class(fanout_graph())
        iterator = engine.iter_matches(path_query(), budget=Budget(max_matches=None))
        first = next(iterator)
        assert len(first) == 3
        iterator.close()
        with pytest.raises(StopIteration):
            next(iterator)

    def test_gm_count_uses_counting_drain(self):
        matcher = GraphMatcher(fanout_graph())
        assert matcher.count(path_query(), budget=Budget(max_matches=9)) == 9
        assert matcher.count(path_query(), budget=Budget(max_matches=None)) == 144


# ---------------------------------------------------------------------- #
# true laziness, measured
# ---------------------------------------------------------------------- #


class CountingGraph(DataGraph):
    """A data graph that counts adjacency-set reads (WCOJ's extension work)."""

    __slots__ = ("successor_reads",)

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.successor_reads = 0

    def successor_set(self, node):
        self.successor_reads += 1
        return super().successor_set(node)


class TestLaziness:
    def test_wcoj_first_match_reads_far_less_than_full_run(self):
        width = 12
        base = fanout_graph(width)
        graph = CountingGraph(list(base.labels), list(base.edges()), name="fanout")
        engine = WCOJEngine(graph)
        graph.successor_reads = 0  # ignore catalog-construction reads

        iterator = engine.iter_matches(path_query(), budget=Budget(max_matches=None))
        next(iterator)
        first_match_reads = graph.successor_reads
        iterator.close()

        graph.successor_reads = 0
        assert engine.count(path_query(), budget=Budget(max_matches=None)) == width**2
        full_reads = graph.successor_reads

        # The first descent touches O(depth) adjacency sets; the full run
        # touches one per extension.  A materialising engine would pay the
        # full cost before the first yield.
        assert first_match_reads <= 4
        assert full_reads > 4 * first_match_reads

    def test_gm_first_match_expands_far_fewer_candidates(self, monkeypatch):
        import importlib

        # The package re-exports the ``mjoin`` *function* under the same
        # name as the submodule; go through importlib for the module.
        mjoin_module = importlib.import_module("repro.matching.mjoin")

        calls = {"n": 0}
        original = mjoin_module._local_candidates

        def counting(*args, **kwargs):
            calls["n"] += 1
            return original(*args, **kwargs)

        monkeypatch.setattr(mjoin_module, "_local_candidates", counting)
        matcher = GraphMatcher(fanout_graph(width=12))

        calls["n"] = 0
        iterator = matcher.iter_matches(path_query(), budget=Budget(max_matches=None))
        next(iterator)
        first_match_calls = calls["n"]
        iterator.close()

        calls["n"] = 0
        assert matcher.count(path_query(), budget=Budget(max_matches=None)) == 144
        full_calls = calls["n"]

        assert first_match_calls <= 4
        assert full_calls > 4 * first_match_calls

    def test_session_stream_is_lazy_for_gm(self):
        session = QuerySession(fanout_graph())
        stream = session.stream(path_query())
        assert next(stream) is not None
        assert stream.num_yielded == 1
        stream.close()
        # A fresh stream still answers in full (the closed one did not
        # poison the session's cached RIG).
        assert session.count(path_query()) == 144


# ---------------------------------------------------------------------- #
# legacy blocking engines: shimmed, warned, still correct
# ---------------------------------------------------------------------- #


class LegacyEngine(Engine):
    """A pre-streaming engine: only implements the blocking ``_evaluate``."""

    name = "legacy"

    def _evaluate(self, graph, query, budget):
        occurrences = []
        for occurrence in itertools.product(*(
            graph.inverted_list(query.label(node)) for node in query.nodes()
        )):
            if all(
                graph.has_edge(occurrence[edge.source], occurrence[edge.target])
                for edge in query.edges()
            ):
                occurrences.append(tuple(occurrence))
                if budget.max_matches is not None and len(occurrences) >= budget.max_matches:
                    break
        return occurrences


class TestLegacyShim:
    def test_blocking_evaluate_warns_but_matches(self):
        graph = build_paper_graph()
        query = path_query()  # child-only, small enough for the brute force
        engine = LegacyEngine(graph)
        reference = BinaryJoinEngine(graph).match(query)
        with pytest.warns(DeprecationWarning, match="bypassing the streaming budget"):
            result = engine.match(query)
        assert result.report.occurrence_set() == reference.report.occurrence_set()

    def test_engine_without_any_evaluate_raises(self):
        class Empty(Engine):
            name = "empty"

        engine = Empty(build_paper_graph())
        with pytest.raises(NotImplementedError):
            list(engine.iter_matches(path_query()))
