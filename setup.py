"""Setuptools shim.

Kept alongside ``pyproject.toml`` so that editable installs work in offline
environments whose setuptools lacks PEP 660 support (no ``wheel`` package):
``pip install -e . --no-build-isolation`` falls back to this file.
"""

from setuptools import setup

setup()
